//! Open-loop transactional traffic over the multi-tenant txn service.
//!
//! Where [`engine`](crate::engine) drives the case-study apps directly,
//! this module drives them *through* the transactional service layer:
//! each pod hosts one [`TxnService`] whose tenants issue app-shaped
//! [`TxnRequest`] streams (hashtable RMW, shuffle puts, join snapshots,
//! dlog shared-tail bumps) at Poisson or bursty open-loop rates.
//!
//! The sweep axes are the contention story the subsystem exists to
//! measure: tenant count × conflict rate × lock hold time, per
//! concurrency-control mode, plus an *aggressor* multiplier for the
//! fairness experiment — tenant 0's arrival rate is scaled by
//! `aggressor` while the victims keep the base rate, and per-tenant p99
//! shows whether the scheduler bounds the victims' inflation.
//!
//! Determinism matches the rest of the stack: schedules and request
//! streams are pre-drawn from split RNG streams, pods are
//! connection-disjoint, and per-tenant stats fold in (pod, tenant)
//! order, so serial and `--shards N` runs are byte-identical.

use crate::arrivals::{ArrivalGen, ArrivalProcess};
use crate::sweep::{find_knee_with, Knee, SweepPoint};
use cluster::{ClusterConfig, Pinned, Testbed};
use simcore::{LatencyHistogram, SimRng, SimTime};
use txn::{
    build_pod, gen_request, Concurrency, ConflictGeometry, Scheduler, ServiceConfig, TenantSpec,
    TenantStats, TxnProfile, TxnService, TxnStats,
};

/// Everything one transactional traffic run needs.
#[derive(Clone, Debug)]
pub struct TxnTrafficConfig {
    /// Request shape the tenants issue.
    pub profile: TxnProfile,
    /// Concurrency-control mode.
    pub concurrency: Concurrency,
    /// QP-pool scheduling discipline.
    pub scheduler: Scheduler,
    /// Aggregate offered transaction load across all pods, in MTPS
    /// (million transactions per second — the txn analogue of MOPS).
    pub offered_mops: f64,
    /// Transactions per tenant (fixed count ⇒ deterministic end).
    pub ops_per_tenant: u64,
    /// Connection-disjoint pods (2 machines each); pods shard.
    pub pods: usize,
    /// Tenants per pod's service.
    pub tenants: usize,
    /// QP slots per pod's service.
    pub qps: usize,
    /// Per-tenant in-flight quota.
    pub quota: usize,
    /// Records per pod table.
    pub records: u64,
    /// Shared hot records (conflict targets).
    pub hot: u64,
    /// Probability an op targets the hot set.
    pub conflict: f64,
    /// Lock hold time: local compute between read and lock/write phases.
    pub hold: SimTime,
    /// Tenant 0's arrival-rate multiplier (1.0 = no aggressor).
    pub aggressor: f64,
    /// Bursty (MMPP) arrivals instead of Poisson.
    pub bursty: bool,
    /// Transactions arriving before this are excluded from histograms.
    pub warmup: SimTime,
    /// Run seed; tenant streams split from it.
    pub seed: u64,
    /// Shard count for the conservative-parallel run (1 = serial).
    pub shards: usize,
}

impl Default for TxnTrafficConfig {
    fn default() -> Self {
        TxnTrafficConfig {
            profile: TxnProfile::Hashtable,
            concurrency: Concurrency::Optimistic,
            scheduler: Scheduler::Drr { quantum: 8 },
            offered_mops: 0.2,
            ops_per_tenant: 400,
            pods: 2,
            tenants: 4,
            qps: 4,
            quota: 2,
            records: 512,
            hot: 16,
            conflict: 0.2,
            hold: SimTime::from_ns(300),
            aggressor: 1.0,
            bursty: false,
            warmup: SimTime::from_us(50),
            seed: 42,
            shards: 1,
        }
    }
}

impl TxnTrafficConfig {
    /// Base per-tenant arrival rate in MTPS (before the aggressor
    /// multiplier; the aggressor's extra load is *on top of* the offered
    /// figure, so victims see the same base rate with and without it).
    pub fn rate_per_tenant(&self) -> f64 {
        self.offered_mops / (self.pods * self.tenants) as f64
    }
}

/// Aggregate result of one transactional traffic run.
#[derive(Clone, Debug)]
pub struct TxnReport {
    /// Offered transaction load that was requested (MTPS).
    pub offered_mops: f64,
    /// Arrival rate the pre-drawn schedules actually realized (MTPS):
    /// post-warmup scheduled transactions over the post-warmup arrival
    /// span — the window the completion meters observe.
    pub realized_mops: f64,
    /// Committed-transaction throughput actually achieved (MTPS).
    pub achieved_mops: f64,
    /// Post-warmup transaction latency samples.
    pub ops: u64,
    /// Folded end-to-end (arrival → commit) latency distribution.
    pub hist: LatencyHistogram,
    /// Folded protocol accounting (commits, aborts by cause, retries).
    pub stats: TxnStats,
    /// Per-tenant stats folded across pods by tenant index — tenant `t`
    /// here aggregates tenant `t` of every pod.
    pub tenants: Vec<TenantStats>,
}

impl TxnReport {
    /// A quantile in microseconds (0 when the histogram is empty).
    pub fn q_us(&self, q: f64) -> f64 {
        self.hist.quantile(q).map_or(0.0, |t| t.as_us())
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.hist.mean().map_or(0.0, |t| t.as_us())
    }

    /// Per-tenant p99 in microseconds, tenant order.
    pub fn tenant_p99_us(&self) -> Vec<f64> {
        self.tenants.iter().map(|t| t.hist.quantile(0.99).map_or(0.0, |q| q.as_us())).collect()
    }

    /// Determinism token: latency buckets + abort accounting, folded in
    /// tenant order.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(self.hist.digest());
        eat(self.stats.digest());
        for t in &self.tenants {
            eat(t.digest());
        }
        h
    }
}

/// Run one open-loop transactional traffic simulation.
pub fn run_txn_traffic(cfg: &TxnTrafficConfig) -> TxnReport {
    assert!(cfg.pods >= 1 && cfg.tenants >= 1 && cfg.qps >= 1);
    assert!(cfg.offered_mops > 0.0, "offered load must be positive");
    assert!(cfg.aggressor >= 1.0, "aggressor multiplies the base rate");
    let mut tb = Testbed::new(ClusterConfig { machines: cfg.pods * 2, ..Default::default() });
    let root = SimRng::new(cfg.seed);
    let geo = ConflictGeometry {
        records: cfg.records,
        hot: cfg.hot,
        conflict: cfg.conflict,
        tenants: cfg.tenants,
    };
    let svc_cfg = ServiceConfig {
        scheduler: cfg.scheduler,
        concurrency: cfg.concurrency,
        hold: cfg.hold,
        cap_reads: cfg.profile.cap_reads(),
        warmup: cfg.warmup,
        ..Default::default()
    };
    let mut setups = Vec::with_capacity(cfg.pods);
    let mut services = Vec::with_capacity(cfg.pods);
    let mut sched_ops = 0u64;
    let mut sched_end = SimTime::ZERO;
    for pod in 0..cfg.pods {
        let setup = build_pod(
            &mut tb,
            pod * 2,
            pod * 2 + 1,
            cfg.qps,
            svc_cfg.cap_reads,
            cfg.records,
            cfg.table_value_len(),
        );
        let specs = (0..cfg.tenants)
            .map(|t| {
                let gidx = (pod * cfg.tenants + t) as u64;
                let rate = cfg.rate_per_tenant() * if t == 0 { cfg.aggressor } else { 1.0 };
                let process = if cfg.bursty {
                    ArrivalProcess::bursty(rate)
                } else {
                    ArrivalProcess::Poisson { rate_mops: rate }
                };
                let mut arrivals = ArrivalGen::new(process, root.split(4000 + gidx));
                let mut req_rng = root.split(5000 + gidx);
                let mut at = SimTime::ZERO;
                let schedule = (0..cfg.ops_per_tenant)
                    .map(|_| {
                        at = at + arrivals.next_gap();
                        (at, gen_request(cfg.profile, &geo, t, &mut req_rng))
                    })
                    .collect();
                TenantSpec { quota: cfg.quota, schedule }
            })
            .collect::<Vec<TenantSpec>>();
        for spec in &specs {
            sched_ops += spec.schedule.iter().filter(|(at, _)| *at >= cfg.warmup).count() as u64;
            if let Some((at, _)) = spec.schedule.last() {
                sched_end = sched_end.max(*at);
            }
        }
        let service = TxnService::new(
            setup.table,
            svc_cfg,
            setup.conns.clone(),
            setup.staging,
            specs,
            &root.split(500 + pod as u64),
        );
        setups.push(setup);
        services.push(service);
    }
    {
        let mut pins: Vec<Pinned<'_>> = services
            .iter_mut()
            .zip(&setups)
            .map(|(s, setup)| Pinned::new(setup.client, s))
            .collect();
        cluster::run_clients_sharded(&mut tb, &mut pins, cfg.shards, SimTime::MAX);
    }
    // Fold per-tenant stats across pods, tenant-major, in pod order.
    let mut tenants: Vec<TenantStats> = Vec::new();
    for service in &services {
        for (t, stats) in service.tenant_stats().into_iter().enumerate() {
            match tenants.get_mut(t) {
                Some(agg) => {
                    agg.hist.merge(&stats.hist);
                    agg.meter.merge(&stats.meter);
                    agg.txn.merge(&stats.txn);
                    agg.admitted += stats.admitted;
                    agg.completed += stats.completed;
                }
                None => tenants.push(stats.clone()),
            }
        }
    }
    let mut hist = LatencyHistogram::new();
    let mut stats = TxnStats::default();
    let mut achieved = 0.0;
    for t in &tenants {
        hist.merge(&t.hist);
        stats.merge(&t.txn);
        achieved += t.meter.mops();
    }
    TxnReport {
        offered_mops: cfg.offered_mops,
        realized_mops: simcore::mops(sched_ops, sched_end.saturating_sub(cfg.warmup)),
        achieved_mops: achieved,
        ops: hist.count(),
        hist,
        stats,
        tenants,
    }
}

impl TxnTrafficConfig {
    /// Value bytes per record (fixed: big enough for a counter plus a
    /// recognisable payload pattern, small enough to keep commits cheap).
    pub fn table_value_len(&self) -> u64 {
        32
    }

    /// Default p99 SLO for the txn knee search, per profile. Wider than
    /// the raw app SLOs: a transaction is several dependent verbs plus
    /// queueing at the service, and the dlog shape serializes on one
    /// record.
    pub fn default_slo(&self) -> SimTime {
        match self.profile {
            TxnProfile::Hashtable => SimTime::from_us(40),
            TxnProfile::Shuffle => SimTime::from_us(40),
            TxnProfile::Join => SimTime::from_us(40),
            TxnProfile::Dlog => SimTime::from_us(120),
        }
    }
}

/// Run `base` at one offered load, with the same warmup compensation as
/// the app-traffic sweep: expected warmup arrivals are added on top of
/// the configured op count so the post-warmup sample count stays roughly
/// constant across loads.
pub fn run_txn_at(base: &TxnTrafficConfig, offered_mops: f64) -> TxnReport {
    let mut cfg = TxnTrafficConfig { offered_mops, ..base.clone() };
    let warm_ops = (cfg.rate_per_tenant() * cfg.warmup.as_us()).ceil() as u64;
    cfg.ops_per_tenant = base.ops_per_tenant + warm_ops;
    run_txn_traffic(&cfg)
}

/// [`run_txn_at`], reduced to the sweep/knee measurement shape.
pub fn run_txn_point(base: &TxnTrafficConfig, offered_mops: f64) -> SweepPoint {
    let r = run_txn_at(base, offered_mops);
    SweepPoint {
        offered_mops: r.offered_mops,
        realized_mops: r.realized_mops,
        achieved_mops: r.achieved_mops,
        ops: r.ops,
        mean_us: r.mean_us(),
        p50_us: r.q_us(0.5),
        p99_us: r.q_us(0.99),
        p999_us: r.q_us(0.999),
        digest: r.digest(),
    }
}

/// Sweep `base` over offered loads, in order.
pub fn txn_sweep(base: &TxnTrafficConfig, loads: &[f64]) -> Vec<SweepPoint> {
    loads.iter().map(|&l| run_txn_point(base, l)).collect()
}

/// The capacity knee of one txn configuration under a p99 SLO.
pub fn find_txn_knee(base: &TxnTrafficConfig, slo: SimTime) -> Knee {
    find_knee_with(|load| run_txn_point(base, load), slo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_traffic_commits_everything() {
        let cfg =
            TxnTrafficConfig { ops_per_tenant: 60, pods: 1, tenants: 2, ..Default::default() };
        let r = run_txn_traffic(&cfg);
        let writes_committed = r.stats.commits;
        assert_eq!(r.stats.failures, 0);
        assert_eq!(writes_committed, 2 * 60, "every admitted txn commits");
        assert!(r.ops > 0 && r.q_us(0.99) > 0.0);
    }

    #[test]
    fn serial_and_sharded_reports_are_byte_identical() {
        let base = TxnTrafficConfig { ops_per_tenant: 50, conflict: 0.5, ..Default::default() };
        let serial = run_txn_traffic(&base);
        let sharded = run_txn_traffic(&TxnTrafficConfig { shards: 2, ..base });
        assert_eq!(serial.digest(), sharded.digest());
        assert_eq!(serial.stats, sharded.stats);
    }

    #[test]
    fn aggressor_raises_only_tenant_zero_rate() {
        let base = TxnTrafficConfig { ops_per_tenant: 80, aggressor: 4.0, ..Default::default() };
        let r = run_txn_traffic(&base);
        let per = &r.tenants;
        assert!(per[0].admitted == per[1].admitted, "same op count per tenant");
        // The aggressor issues the same count 4x faster, so its share of
        // early (pre-quiescence) service time is larger; the victims must
        // still complete everything.
        for t in per {
            assert_eq!(t.completed, t.admitted);
        }
    }
}
