//! The open-loop worker and the traffic-run harness.
//!
//! # The open-loop protocol
//!
//! Each [`OpenLoopWorker`] wraps one app [`Driver`] and one [`ArrivalGen`].
//! The worker is a `cluster::Client`: it yields until the next arrival
//! time, issues exactly one app operation *at that time*, then immediately
//! schedules the following arrival — never waiting for the operation to
//! complete. Because the testbed models queueing internally (every
//! contended resource books real service intervals), issuing at the exact
//! arrival instant *is* the open-loop discipline: under overload,
//! completion times recede without throttling arrivals, and the latency
//! tail grows without bound — exactly the signal the knee finder needs.
//!
//! # Deferred samples
//!
//! Optimized app variants batch: an arrival may be absorbed locally and
//! only complete when a later arrival triggers the flush. Drivers therefore
//! report latency samples through an out-buffer of `(arrival, completion)`
//! pairs, resolved when known — immediately for unbatched operations, at
//! flush time for absorbed ones. Samples are windowed by *arrival* time,
//! which is scheduling-independent, so the per-window series is
//! byte-identical across serial/parallel/sharded runs.
//!
//! # Determinism
//!
//! Worker RNG streams are split from the run seed by global worker index;
//! per-worker stats are folded in worker-index order after the run. A
//! traffic cluster is made of connection-disjoint *pods*, so
//! `cluster::shard_plan` places whole pods on shards and the sharded run
//! is byte-identical to the serial one.

use crate::apps::{self, AppDriver};
use crate::arrivals::{ArrivalGen, ArrivalProcess};
use cluster::{run_clients_sharded, Pinned, Step, Testbed};
use simcore::{LatencyHistogram, LatencySeries, Meter, SimRng, SimTime};

/// Which case-study app the traffic drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppKind {
    /// Distributed hashtable front-ends (search + insert, Zipf keys).
    Hashtable,
    /// Shuffle entry push into per-destination slabs.
    Shuffle,
    /// Join-probe: indexed tuple lookups.
    Join,
    /// Sequencer-ordered log append.
    Dlog,
}

impl AppKind {
    /// All four apps, in canonical order.
    pub fn all() -> [AppKind; 4] {
        [AppKind::Hashtable, AppKind::Shuffle, AppKind::Join, AppKind::Dlog]
    }

    /// Stable lowercase name (used in experiment ids and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::Hashtable => "hashtable",
            AppKind::Shuffle => "shuffle",
            AppKind::Join => "join",
            AppKind::Dlog => "dlog",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<AppKind> {
        Self::all().into_iter().find(|a| a.name() == s)
    }

    /// Default p99 SLO for the knee search. Calibrated per app so both
    /// variants clear it comfortably at low load: the knee then measures
    /// capacity, not baseline latency.
    pub fn default_slo(&self) -> SimTime {
        match self {
            AppKind::Hashtable => SimTime::from_us(12),
            AppKind::Shuffle => SimTime::from_us(15),
            AppKind::Join => SimTime::from_us(40),
            AppKind::Dlog => SimTime::from_us(60),
        }
    }
}

/// Everything a traffic run needs.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// App under load.
    pub app: AppKind,
    /// Paper-guideline variant (consolidation / SGL+SP / doorbell batch /
    /// batched append) instead of the naive one.
    pub optimized: bool,
    /// Aggregate offered load across all workers, in MOPS.
    pub offered_mops: f64,
    /// Arrivals issued per worker (fixed count ⇒ deterministic end).
    pub ops_per_worker: u64,
    /// Connection-disjoint pods (2 machines each); pods shard.
    pub pods: usize,
    /// Open-loop workers per pod, pinned to the pod's client machine.
    pub workers_per_pod: usize,
    /// Bursty (MMPP) arrivals instead of Poisson.
    pub bursty: bool,
    /// Samples arriving before this are excluded from the histogram.
    pub warmup: SimTime,
    /// Window width of the per-run latency/throughput time series.
    pub window: SimTime,
    /// Run seed; worker streams split from it.
    pub seed: u64,
    /// Shard count for the conservative-parallel run (1 = serial).
    pub shards: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            app: AppKind::Hashtable,
            optimized: false,
            offered_mops: 0.5,
            ops_per_worker: 1200,
            pods: 2,
            workers_per_pod: 2,
            bursty: false,
            warmup: SimTime::from_us(50),
            window: SimTime::from_us(500),
            seed: 42,
            shards: 1,
        }
    }
}

impl TrafficConfig {
    /// Total worker count.
    pub fn workers(&self) -> usize {
        self.pods * self.workers_per_pod
    }

    /// Per-worker arrival rate in MOPS.
    pub fn rate_per_worker(&self) -> f64 {
        self.offered_mops / self.workers() as f64
    }
}

/// One app operation source: called once per arrival; pushes resolved
/// `(arrival, completion)` latency samples into `out` (possibly none now
/// and several later, for batching drivers).
pub trait Driver: Send {
    /// Issue the operation arriving at `now`.
    fn issue(&mut self, now: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>);
    /// Flush anything still buffered (end of stream or linger expiry).
    fn drain(&mut self, now: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>);
    /// Latest time buffered work may linger unflushed. The worker wakes at
    /// this time (if it precedes the next arrival) and calls [`drain`] —
    /// bounding the batch-fill wait that open-loop gaps would otherwise
    /// make unbounded at low load.
    ///
    /// [`drain`]: Driver::drain
    fn deadline(&self) -> Option<SimTime> {
        None
    }
}

/// Per-worker telemetry, folded across workers in index order.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Whole-run latency distribution (post-warmup arrivals).
    pub hist: LatencyHistogram,
    /// Windowed latency/throughput series (windowed by arrival).
    pub series: LatencySeries,
    /// Completion meter (achieved throughput).
    pub meter: Meter,
    /// Arrivals issued.
    pub issued: u64,
}

/// An open-loop client: one driver + one arrival stream + its stats.
pub struct OpenLoopWorker {
    driver: AppDriver,
    gen: ArrivalGen,
    next_at: SimTime,
    remaining: u64,
    warmup: SimTime,
    buf: Vec<(SimTime, SimTime)>,
    /// Telemetry, readable after the run.
    pub stats: WorkerStats,
}

impl OpenLoopWorker {
    /// A worker issuing `ops` arrivals through `driver`.
    pub fn new(
        driver: AppDriver,
        process: ArrivalProcess,
        rng: SimRng,
        cfg: &TrafficConfig,
    ) -> Self {
        let mut gen = ArrivalGen::new(process, rng);
        // The first arrival is one gap past time zero.
        let next_at = SimTime::ZERO + gen.next_gap();
        OpenLoopWorker {
            driver,
            gen,
            next_at,
            remaining: cfg.ops_per_worker,
            warmup: cfg.warmup,
            buf: Vec::new(),
            stats: WorkerStats {
                hist: LatencyHistogram::new(),
                series: LatencySeries::new(cfg.window),
                meter: Meter::new(cfg.warmup),
                issued: 0,
            },
        }
    }

    fn absorb(&mut self) {
        for (arrival, done) in self.buf.drain(..) {
            debug_assert!(done >= arrival, "completion precedes arrival");
            self.stats.meter.record(done);
            if arrival >= self.warmup {
                let lat = done - arrival;
                self.stats.hist.record(lat);
                self.stats.series.record(arrival, lat);
            }
        }
    }
}

impl cluster::Client for OpenLoopWorker {
    fn step(&mut self, now: SimTime, tb: &mut Testbed) -> Step {
        if self.remaining == 0 {
            return Step::Done;
        }
        // A linger deadline that has come due flushes the driver's
        // partially-filled batch before (or instead of) issuing.
        if self.driver.deadline().is_some_and(|d| now >= d) {
            self.driver.drain(now, tb, &mut self.buf);
        }
        if now >= self.next_at {
            self.driver.issue(now, tb, &mut self.buf);
            self.remaining -= 1;
            self.stats.issued += 1;
            if self.remaining == 0 {
                // End of stream: resolve whatever the driver still buffers.
                self.driver.drain(now, tb, &mut self.buf);
                self.absorb();
                return Step::Done;
            }
            self.next_at = now + self.gen.next_gap();
        }
        self.absorb();
        // Wake at the next arrival, or earlier if buffered work would
        // outstay its linger bound. A due deadline was just drained, so
        // any remaining one is strictly in the future.
        let wake = match self.driver.deadline() {
            Some(d) => self.next_at.min(d),
            None => self.next_at,
        };
        debug_assert!(wake > now, "worker wake time must advance");
        Step::Yield(wake)
    }
}

/// Aggregate result of one traffic run at one offered load.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// The offered load that was requested.
    pub offered_mops: f64,
    /// Arrival rate the run actually realized: post-warmup arrivals over
    /// the post-warmup arrival span — the same window the completion
    /// meter observes, so the two rates are comparable point for point.
    /// Matches `offered_mops` in expectation, but a finite bursty (MMPP)
    /// run's phase luck shifts it by several percent either way —
    /// capacity judgements should compare achieved throughput against
    /// this, not the nominal rate.
    pub realized_mops: f64,
    /// Throughput actually achieved (completions over the observed span).
    pub achieved_mops: f64,
    /// Post-warmup samples in the histogram.
    pub ops: u64,
    /// Folded whole-run latency distribution.
    pub hist: LatencyHistogram,
    /// Folded windowed series.
    pub series: LatencySeries,
    /// Virtual time the run finished at.
    pub finished: SimTime,
}

impl TrafficReport {
    /// A quantile in microseconds (0 when the histogram is empty).
    pub fn q_us(&self, q: f64) -> f64 {
        self.hist.quantile(q).map_or(0.0, |t| t.as_us())
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.hist.mean().map_or(0.0, |t| t.as_us())
    }

    /// Digest of the folded histogram — the determinism gate's unit of
    /// comparison across serial/parallel/sharded runs.
    pub fn digest(&self) -> u64 {
        self.hist.digest()
    }
}

/// Run one open-loop traffic simulation and fold the telemetry.
pub fn run_traffic(cfg: &TrafficConfig) -> TrafficReport {
    assert!(cfg.pods >= 1 && cfg.workers_per_pod >= 1);
    assert!(cfg.offered_mops > 0.0, "offered load must be positive");
    let (mut tb, mut workers) = apps::build(cfg);
    {
        let mut pins: Vec<Pinned<'_>> =
            workers.iter_mut().map(|(m, w)| Pinned::new(*m, w)).collect();
        run_clients_sharded(&mut tb, &mut pins, cfg.shards, SimTime::MAX);
    }
    let mut hist = LatencyHistogram::new();
    let mut series = LatencySeries::new(cfg.window);
    let mut meter = Meter::new(cfg.warmup);
    let mut finished = SimTime::ZERO;
    for (_, w) in &workers {
        debug_assert_eq!(w.stats.issued, cfg.ops_per_worker);
        hist.merge(&w.stats.hist);
        series.merge(&w.stats.series);
        meter.merge(&w.stats.meter);
        finished = finished.max(w.next_at);
    }
    // Every post-warmup arrival yields exactly one histogram sample, so
    // the histogram count over the post-warmup arrival span *is* the
    // realized arrival rate, measured over the meter's own window.
    let realized = simcore::mops(hist.count(), finished.saturating_sub(cfg.warmup));
    TrafficReport {
        offered_mops: cfg.offered_mops,
        realized_mops: realized,
        achieved_mops: meter.mops(),
        ops: hist.count(),
        hist,
        series,
        finished,
    }
}
