//! Open-loop arrival processes.
//!
//! An open-loop generator decides *when* operations arrive independently
//! of how the system is coping — the defining property that lets queueing
//! (and therefore tail latency) build as offered load approaches capacity.
//! Two processes are provided: memoryless Poisson arrivals, and a two-state
//! Markov-modulated Poisson process (MMPP) whose high/low phases model
//! bursty traffic at the same average offered load.

use simcore::{SimRng, SimTime};

/// Picoseconds per second over operations per second: 1 MOPS has a mean
/// inter-arrival gap of exactly 1 µs = 1e6 ps.
const PS_PER_MOPS: f64 = 1e6;

/// The statistical shape of an arrival stream.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_mops`.
    Poisson {
        /// Mean arrival rate in million operations per second.
        rate_mops: f64,
    },
    /// Two-state MMPP: exponentially-dwelling high/low phases, each phase
    /// itself Poisson. With equal mean dwell the average rate is
    /// `(rate_hi + rate_lo) / 2`.
    Mmpp {
        /// Arrival rate during the high (burst) phase, in MOPS.
        rate_hi_mops: f64,
        /// Arrival rate during the low phase, in MOPS.
        rate_lo_mops: f64,
        /// Mean dwell time in each phase.
        mean_dwell: SimTime,
    },
}

impl ArrivalProcess {
    /// A bursty process averaging `rate_mops`: 1.5× the mean rate in
    /// bursts, 0.5× between bursts, with 200 µs mean phase dwell.
    pub fn bursty(rate_mops: f64) -> Self {
        ArrivalProcess::Mmpp {
            rate_hi_mops: rate_mops * 1.5,
            rate_lo_mops: rate_mops * 0.5,
            mean_dwell: SimTime::from_us(200),
        }
    }
}

/// Draws successive inter-arrival gaps for one worker's stream.
///
/// Deterministic: the gap sequence is a pure function of the seed RNG.
/// Gaps are clamped to ≥ 1 ps so simulated time strictly advances.
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SimRng,
    /// MMPP state: currently in the high phase?
    hi: bool,
    /// MMPP state: picoseconds left before the next phase switch.
    dwell_left: f64,
}

/// One exponential draw with the given mean (in ps).
fn exp_ps(rng: &mut SimRng, mean_ps: f64) -> f64 {
    // gen_f64 is in [0, 1); 1-u is in (0, 1], so ln is finite.
    -mean_ps * (1.0 - rng.gen_f64()).ln()
}

impl ArrivalGen {
    /// A generator over `process` drawing randomness from `rng` (use a
    /// [`SimRng::split`] stream unique to the worker).
    pub fn new(process: ArrivalProcess, mut rng: SimRng) -> Self {
        let dwell_left = match process {
            ArrivalProcess::Mmpp { mean_dwell, .. } => exp_ps(&mut rng, mean_dwell.as_ps() as f64),
            ArrivalProcess::Poisson { .. } => 0.0,
        };
        ArrivalGen { process, rng, hi: true, dwell_left }
    }

    /// The gap between the previous arrival and the next one.
    pub fn next_gap(&mut self) -> SimTime {
        let gap_ps = match self.process {
            ArrivalProcess::Poisson { rate_mops } => {
                debug_assert!(rate_mops > 0.0);
                exp_ps(&mut self.rng, PS_PER_MOPS / rate_mops)
            }
            ArrivalProcess::Mmpp { rate_hi_mops, rate_lo_mops, mean_dwell } => {
                // Draw in the current phase; if the gap crosses the phase
                // boundary, advance to the boundary, flip phase, and redraw
                // (valid by memorylessness of the exponential).
                let mut elapsed = 0.0f64;
                loop {
                    let rate = if self.hi { rate_hi_mops } else { rate_lo_mops };
                    debug_assert!(rate > 0.0);
                    let g = exp_ps(&mut self.rng, PS_PER_MOPS / rate);
                    if g < self.dwell_left {
                        self.dwell_left -= g;
                        break elapsed + g;
                    }
                    elapsed += self.dwell_left;
                    self.hi = !self.hi;
                    self.dwell_left = exp_ps(&mut self.rng, mean_dwell.as_ps() as f64);
                }
            }
        };
        SimTime::from_ps((gap_ps as u64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        // 0.5 MOPS => mean gap 2 µs.
        let mut g = ArrivalGen::new(ArrivalProcess::Poisson { rate_mops: 0.5 }, SimRng::new(7));
        let n = 200_000u64;
        let total: u64 = (0..n).map(|_| g.next_gap().as_ps()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2e6).abs() < 2e4, "mean gap {mean} ps");
    }

    #[test]
    fn mmpp_average_rate_matches_target() {
        let mut g = ArrivalGen::new(ArrivalProcess::bursty(1.0), SimRng::new(11));
        let n = 400_000u64;
        let total: u64 = (0..n).map(|_| g.next_gap().as_ps()).sum();
        // Average rate 1 MOPS => mean gap ~1 µs. Burstiness inflates the
        // tolerance (arrivals oversample the high phase), so accept a
        // generous band around the nominal mean.
        let mean = total as f64 / n as f64;
        assert!((0.6e6..1.4e6).contains(&mean), "mean gap {mean} ps");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare squared coefficient of variation of per-window counts.
        fn window_cv2(mut gen: ArrivalGen) -> f64 {
            let window = SimTime::from_us(100).as_ps();
            let mut t = 0u64;
            let mut counts = vec![0u64; 200];
            while let Some(w) = counts.get_mut((t / window) as usize) {
                *w += 1;
                t += gen.next_gap().as_ps();
            }
            let n = counts.len() as f64;
            let mean = counts.iter().sum::<u64>() as f64 / n;
            let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n;
            var / (mean * mean)
        }
        let poisson =
            window_cv2(ArrivalGen::new(ArrivalProcess::Poisson { rate_mops: 1.0 }, SimRng::new(3)));
        let mmpp = window_cv2(ArrivalGen::new(ArrivalProcess::bursty(1.0), SimRng::new(3)));
        assert!(mmpp > poisson * 1.5, "mmpp cv2 {mmpp} poisson cv2 {poisson}");
    }

    #[test]
    fn gaps_are_deterministic_and_positive() {
        let a: Vec<u64> = {
            let mut g = ArrivalGen::new(ArrivalProcess::bursty(2.0), SimRng::new(42));
            (0..1000).map(|_| g.next_gap().as_ps()).collect()
        };
        let b: Vec<u64> = {
            let mut g = ArrivalGen::new(ArrivalProcess::bursty(2.0), SimRng::new(42));
            (0..1000).map(|_| g.next_gap().as_ps()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&g| g >= 1));
    }
}
