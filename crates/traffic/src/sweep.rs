//! Offered-load sweeps and the knee finder.
//!
//! A *sweep* runs the same traffic configuration at a list of offered
//! loads and reports a [`SweepPoint`] per load. The *knee finder* walks
//! offered load — doubling until the p99 SLO breaks, then bisecting — to
//! locate the maximum offered load whose p99 stays within the SLO: the
//! app's serving capacity under a tail-latency contract.

use crate::engine::{run_traffic, TrafficConfig, TrafficReport};
use simcore::SimTime;

/// Measured outcome at one offered load.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Offered load in MOPS (aggregate across workers).
    pub offered_mops: f64,
    /// Arrival rate the run actually realized in MOPS (a finite bursty
    /// run deviates several percent from the nominal offered rate).
    pub realized_mops: f64,
    /// Achieved completion throughput in MOPS.
    pub achieved_mops: f64,
    /// Post-warmup latency samples.
    pub ops: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Histogram digest — byte-identity token across run modes.
    pub digest: u64,
}

impl SweepPoint {
    fn from_report(r: &TrafficReport) -> Self {
        SweepPoint {
            offered_mops: r.offered_mops,
            realized_mops: r.realized_mops,
            achieved_mops: r.achieved_mops,
            ops: r.ops,
            mean_us: r.mean_us(),
            p50_us: r.q_us(0.5),
            p99_us: r.q_us(0.99),
            p999_us: r.q_us(0.999),
            digest: r.digest(),
        }
    }
}

/// Run `base` at one offered load.
///
/// Arrivals inside the warmup window contribute no samples, and at high
/// load the whole configured op count can land there. The expected
/// warmup arrivals are added on top of `base.ops_per_worker`, keeping
/// the post-warmup sample count roughly constant across a sweep.
pub fn run_point(base: &TrafficConfig, offered_mops: f64) -> SweepPoint {
    let mut cfg = TrafficConfig { offered_mops, ..base.clone() };
    let warm_ops = (cfg.rate_per_worker() * cfg.warmup.as_us()).ceil() as u64;
    cfg.ops_per_worker = base.ops_per_worker + warm_ops;
    SweepPoint::from_report(&run_traffic(&cfg))
}

/// Run `base` at each offered load in `loads`, in order.
pub fn sweep(base: &TrafficConfig, loads: &[f64]) -> Vec<SweepPoint> {
    loads.iter().map(|&l| run_point(base, l)).collect()
}

/// The capacity knee of one app variant under a p99 SLO.
#[derive(Clone, Debug)]
pub struct Knee {
    /// Maximum offered load (MOPS) whose p99 met the SLO.
    pub knee_mops: f64,
    /// p99 at the knee, µs.
    pub p99_us_at_knee: f64,
    /// Achieved throughput at the knee, MOPS.
    pub achieved_mops: f64,
    /// Traffic runs spent locating the knee.
    pub probes: u32,
    /// The SLO that defined the knee.
    pub slo: SimTime,
}

/// Lowest offered load probed (MOPS); below this the knee reads as 0.
const KNEE_FLOOR: f64 = 0.05;
/// Offered-load cap (MOPS) in case the SLO never breaks.
const KNEE_CEIL: f64 = 256.0;
/// Bisection steps after the bracketing phase — enough for ~0.1% of the
/// bracket, far below run-to-run quantile noise.
const KNEE_BISECT: u32 = 10;
/// Minimum achieved/offered ratio for a probe to count as sustained.
/// Beyond capacity an open-loop run's backlog grows without bound, and a
/// finite run's arrival-windowed p99 lags the true steady state — but
/// goodput falling below offered load exposes the overload immediately.
/// Unsaturated runs measure ≥ 0.97 here (the meter's ramp/drain edges
/// cost a couple percent); saturated ones collapse well below 0.95.
/// The ratio is taken against the *realized* arrival rate when that is
/// lower than the nominal one: a finite MMPP run's phase luck shifts the
/// realized rate several percent below nominal even with zero backlog,
/// which is not a capacity failure. Arrivals are open-loop, so under true
/// overload the realized rate holds while completions stretch past the
/// last arrival — the collapse stays visible.
const GOODPUT_FLOOR: f64 = 0.95;

/// Find the maximum offered load whose p99 stays ≤ `slo` while goodput
/// tracks the offered load (≥ [`GOODPUT_FLOOR`] of it).
///
/// Doubles from [`KNEE_FLOOR`] until the SLO breaks (bracketing), then
/// bisects the bracket. Returns a zero knee when even the floor load
/// breaks the SLO, and the cap when nothing does.
pub fn find_knee(base: &TrafficConfig, slo: SimTime) -> Knee {
    find_knee_with(|load| run_point(base, load), slo)
}

/// [`find_knee`] over an arbitrary probe function — any open-loop system
/// that can report a [`SweepPoint`] at an offered load (the txn service
/// reuses this; the measurement discipline must not fork per subsystem).
pub fn find_knee_with(mut point: impl FnMut(f64) -> SweepPoint, slo: SimTime) -> Knee {
    let slo_us = slo.as_us();
    let mut probes = 0u32;
    let mut probe = |load: f64| -> SweepPoint {
        probes += 1;
        point(load)
    };
    // A probe without a single post-warmup sample cannot demonstrate SLO
    // compliance, and neither can one whose goodput collapsed below the
    // offered load; treat both as violations so the bracket stays honest.
    let meets = |pt: &SweepPoint| {
        let sustained = GOODPUT_FLOOR * pt.offered_mops.min(pt.realized_mops);
        pt.ops > 0 && pt.p99_us <= slo_us && pt.achieved_mops >= sustained
    };

    // Bracket: double until p99 exceeds the SLO.
    let mut good: Option<SweepPoint> = None;
    let mut lo = 0.0f64;
    let mut hi = KNEE_FLOOR;
    loop {
        let pt = probe(hi);
        if meets(&pt) {
            lo = hi;
            good = Some(pt);
            if hi >= KNEE_CEIL {
                break;
            }
            hi = (hi * 2.0).min(KNEE_CEIL);
        } else {
            break;
        }
    }

    match good {
        None => Knee { knee_mops: 0.0, p99_us_at_knee: 0.0, achieved_mops: 0.0, probes, slo },
        Some(mut best) => {
            if lo < KNEE_CEIL {
                // Bisect (lo good, hi bad).
                let mut hi = hi;
                for _ in 0..KNEE_BISECT {
                    let mid = (lo + hi) / 2.0;
                    let pt = probe(mid);
                    if meets(&pt) {
                        lo = mid;
                        best = pt;
                    } else {
                        hi = mid;
                    }
                }
            }
            Knee {
                knee_mops: lo,
                p99_us_at_knee: best.p99_us,
                achieved_mops: best.achieved_mops,
                probes,
                slo,
            }
        }
    }
}
