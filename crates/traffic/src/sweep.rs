//! Offered-load sweeps and the knee finder.
//!
//! A *sweep* runs the same traffic configuration at a list of offered
//! loads and reports a [`SweepPoint`] per load. The *knee finder* walks
//! offered load — doubling until the p99 SLO breaks, then bisecting — to
//! locate the maximum offered load whose p99 stays within the SLO: the
//! app's serving capacity under a tail-latency contract.

use crate::engine::{run_traffic, TrafficConfig, TrafficReport};
use simcore::SimTime;

/// Measured outcome at one offered load.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Offered load in MOPS (aggregate across workers).
    pub offered_mops: f64,
    /// Arrival rate the run actually realized in MOPS (a finite bursty
    /// run deviates several percent from the nominal offered rate).
    pub realized_mops: f64,
    /// Achieved completion throughput in MOPS.
    pub achieved_mops: f64,
    /// Post-warmup latency samples.
    pub ops: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Histogram digest — byte-identity token across run modes.
    pub digest: u64,
}

impl SweepPoint {
    fn from_report(r: &TrafficReport) -> Self {
        SweepPoint {
            offered_mops: r.offered_mops,
            realized_mops: r.realized_mops,
            achieved_mops: r.achieved_mops,
            ops: r.ops,
            mean_us: r.mean_us(),
            p50_us: r.q_us(0.5),
            p99_us: r.q_us(0.99),
            p999_us: r.q_us(0.999),
            digest: r.digest(),
        }
    }
}

/// Run `base` at one offered load.
///
/// Arrivals inside the warmup window contribute no samples, and at high
/// load the whole configured op count can land there. The expected
/// warmup arrivals are added on top of `base.ops_per_worker`, keeping
/// the post-warmup sample count roughly constant across a sweep.
pub fn run_point(base: &TrafficConfig, offered_mops: f64) -> SweepPoint {
    let mut cfg = TrafficConfig { offered_mops, ..base.clone() };
    let warm_ops = (cfg.rate_per_worker() * cfg.warmup.as_us()).ceil() as u64;
    cfg.ops_per_worker = base.ops_per_worker + warm_ops;
    SweepPoint::from_report(&run_traffic(&cfg))
}

/// Run `base` at each offered load in `loads`, in order.
pub fn sweep(base: &TrafficConfig, loads: &[f64]) -> Vec<SweepPoint> {
    loads.iter().map(|&l| run_point(base, l)).collect()
}

/// The capacity knee of one app variant under a p99 SLO.
#[derive(Clone, Debug)]
pub struct Knee {
    /// Maximum offered load (MOPS) whose p99 met the SLO.
    pub knee_mops: f64,
    /// p99 at the knee, µs.
    pub p99_us_at_knee: f64,
    /// Achieved throughput at the knee, MOPS.
    pub achieved_mops: f64,
    /// Traffic runs spent locating the knee.
    pub probes: u32,
    /// The SLO that defined the knee.
    pub slo: SimTime,
}

/// Lowest offered load probed (MOPS); below this the knee reads as 0.
const KNEE_FLOOR: f64 = 0.05;
/// Offered-load cap (MOPS) in case the SLO never breaks.
const KNEE_CEIL: f64 = 256.0;
/// Bisection steps after the bracketing phase — enough for ~0.1% of the
/// bracket, far below run-to-run quantile noise.
const KNEE_BISECT: u32 = 10;
/// Minimum achieved/offered ratio for a probe to count as sustained.
/// Beyond capacity an open-loop run's backlog grows without bound, and a
/// finite run's arrival-windowed p99 lags the true steady state — but
/// goodput falling below offered load exposes the overload immediately.
/// Unsaturated runs measure ≥ 0.97 here (the meter's ramp/drain edges
/// cost a couple percent); saturated ones collapse well below 0.95.
/// The ratio is taken against the *realized* arrival rate when that is
/// lower than the nominal one: a finite MMPP run's phase luck shifts the
/// realized rate several percent below nominal even with zero backlog,
/// which is not a capacity failure. Arrivals are open-loop, so under true
/// overload the realized rate holds while completions stretch past the
/// last arrival — the collapse stays visible.
const GOODPUT_FLOOR: f64 = 0.95;

/// Find the maximum offered load whose p99 stays ≤ `slo` while goodput
/// tracks the offered load (≥ [`GOODPUT_FLOOR`] of it).
///
/// Doubles from [`KNEE_FLOOR`] until the SLO breaks (bracketing), then
/// bisects the bracket. Returns a zero knee when even the floor load
/// breaks the SLO, and the cap when nothing does.
pub fn find_knee(base: &TrafficConfig, slo: SimTime) -> Knee {
    find_knee_with(|load| run_point(base, load), slo)
}

/// [`find_knee`] over an arbitrary probe function — any open-loop system
/// that can report a [`SweepPoint`] at an offered load (the txn service
/// reuses this; the measurement discipline must not fork per subsystem).
pub fn find_knee_with(mut point: impl FnMut(f64) -> SweepPoint, slo: SimTime) -> Knee {
    let slo_us = slo.as_us();
    let mut probes = 0u32;
    // Per-sweep memo keyed by the load's bit pattern: a probe is a full
    // open-loop simulation, and the bracketing and bisection phases can
    // land on the same load — replay the cached point instead of
    // simulating it again. `probes` counts simulations, not lookups.
    let mut cache: Vec<(u64, SweepPoint)> = Vec::new();
    let mut probe = |load: f64| -> SweepPoint {
        let key = load.to_bits();
        if let Some((_, pt)) = cache.iter().find(|(k, _)| *k == key) {
            return pt.clone();
        }
        probes += 1;
        let pt = point(load);
        cache.push((key, pt.clone()));
        pt
    };
    // A probe without a single post-warmup sample cannot demonstrate SLO
    // compliance, and neither can one whose goodput collapsed below the
    // offered load; treat both as violations so the bracket stays honest.
    let meets = |pt: &SweepPoint| {
        let sustained = GOODPUT_FLOOR * pt.offered_mops.min(pt.realized_mops);
        pt.ops > 0 && pt.p99_us <= slo_us && pt.achieved_mops >= sustained
    };

    // Bracket: double until p99 exceeds the SLO.
    let mut good: Option<SweepPoint> = None;
    let mut lo = 0.0f64;
    let mut hi = KNEE_FLOOR;
    loop {
        let pt = probe(hi);
        if meets(&pt) {
            lo = hi;
            good = Some(pt);
            if hi >= KNEE_CEIL {
                break;
            }
            hi = (hi * 2.0).min(KNEE_CEIL);
        } else {
            break;
        }
    }

    match good {
        None => Knee { knee_mops: 0.0, p99_us_at_knee: 0.0, achieved_mops: 0.0, probes, slo },
        Some(mut best) => {
            if lo < KNEE_CEIL {
                // Bisect (lo good, hi bad).
                let mut hi = hi;
                for _ in 0..KNEE_BISECT {
                    let mid = (lo + hi) / 2.0;
                    let pt = probe(mid);
                    if meets(&pt) {
                        lo = mid;
                        best = pt;
                    } else {
                        hi = mid;
                    }
                }
            }
            Knee {
                knee_mops: lo,
                p99_us_at_knee: best.p99_us,
                achieved_mops: best.achieved_mops,
                probes,
                slo,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(load: f64) -> SweepPoint {
        // An ideal open-loop system: p99 equals the offered load in µs,
        // goodput tracks offered exactly.
        SweepPoint {
            offered_mops: load,
            realized_mops: load,
            achieved_mops: load,
            ops: 1000,
            mean_us: load,
            p50_us: load,
            p99_us: load,
            p999_us: load,
            digest: 0,
        }
    }

    /// The memo contract: one simulation per distinct load, and the probe
    /// counter reports simulations (cache hits are free).
    #[test]
    fn knee_simulates_each_load_at_most_once() {
        let mut simulated: Vec<u64> = Vec::new();
        let knee = find_knee_with(
            |load| {
                assert!(
                    !simulated.contains(&load.to_bits()),
                    "load {load} simulated twice in one sweep"
                );
                simulated.push(load.to_bits());
                synthetic(load)
            },
            SimTime::from_us(3),
        );
        assert_eq!(knee.probes as usize, simulated.len());
        // SLO of 3µs on the ideal system: the knee lands in (2, 3].
        assert!(knee.knee_mops > 2.0 && knee.knee_mops <= 3.0, "knee {}", knee.knee_mops);
    }

    /// Replaying a cached point must not change the result: a probe
    /// function that would diverge on re-simulation (nondeterministic
    /// tail) still yields a stable knee because each load runs once.
    #[test]
    fn cached_points_replay_identically() {
        let mut calls = 0u32;
        let knee = find_knee_with(
            |load| {
                calls += 1;
                // Tail noise grows with every *simulation* — if a load
                // were re-simulated its p99 would move.
                let mut pt = synthetic(load);
                pt.p999_us += calls as f64;
                pt
            },
            SimTime::from_us(5),
        );
        assert_eq!(knee.probes, calls, "probe counter must track simulations exactly");
    }
}
