//! Open-loop drivers for the four case-study apps.
//!
//! Each app gets a **basic** and an **optimized** driver. The optimized
//! variants apply the paper's guidelines — NUMA-affine consolidation for
//! the hashtable, 16-entry staged-push batching for the shuffle, 8-deep
//! doorbell batching for join probes, and reservation batching for the
//! log — so a load sweep exposes how far each guideline moves the knee.
//!
//! # Topology
//!
//! A traffic cluster is `pods` independent pods of two machines: clients
//! on machine `2p`, the served memory on machine `2p+1`. Connections never
//! leave a pod, so `cluster::shard_plan` places whole pods per shard and
//! `--shards N` runs stay byte-identical to serial ones.
//!
//! # Batching and the linger deadline
//!
//! A batching driver holds arrivals until the batch fills. Under open-loop
//! arrivals the wait is unbounded at low load, so each batching driver
//! also exposes a *linger deadline* — the oldest buffered arrival plus a
//! small bound — and the [`OpenLoopWorker`](crate::engine::OpenLoopWorker)
//! wakes at that deadline to flush short batches. Tail latency of the
//! optimized variants is therefore `linger + flush` at low load and
//! batch-amortized at high load, which is the real trade batching makes.

use crate::engine::{AppKind, Driver, TrafficConfig};
use cluster::{ClusterConfig, ConnId, Endpoint, Testbed};
use rnicsim::{CqeStatus, MrId, QpNum, RKey, Sge, VerbKind, WorkRequest, WrId};
use simcore::{SimRng, SimTime};
use workloads::{fnv64, ZipfAlias, HEADER_BYTES};

/// Hashtable: key-space size (slots are [`apps::hashtable::SLOT_BYTES`]).
pub const HT_KEYS: u64 = 1 << 14;
/// Hashtable: value bytes per slot entry.
pub const HT_VALUE_LEN: u64 = 64;
/// Hashtable: fraction of ops that are inserts (rest are searches).
pub const HT_WRITE_FRACTION: f64 = 0.5;
/// Hashtable: the hottest `1/HT_HOT_INV` of ranks take the buffered path.
pub const HT_HOT_INV: u64 = 32;
/// Hashtable: buffered writes per block before a flush (the paper's θ).
pub const HT_THETA: u32 = 16;

/// Shuffle: bytes per shuffle entry.
pub const SHUFFLE_ENTRY: u64 = 32;
/// Shuffle: entries per staged-push flush (the paper's SP16).
pub const SHUFFLE_SP: usize = 16;
/// Shuffle: linger bound on a partially-filled staged batch.
pub const SHUFFLE_LINGER: SimTime = SimTime::from_us(2);

/// Join: tuples in the probed relation.
pub const JOIN_TUPLES: u64 = 1 << 16;
/// Join: bytes per tuple.
pub const JOIN_TUPLE_BYTES: u64 = 16;
/// Join: probes per doorbell batch.
pub const JOIN_DOORBELL: usize = 8;
/// Join: linger bound on a partially-filled doorbell batch.
pub const JOIN_LINGER: SimTime = SimTime::from_us(1);

/// Dlog: encoded record size (16-byte header + 112-byte body).
pub const DLOG_RECORD: u64 = (HEADER_BYTES as u64) + 112;
/// Dlog: records per reservation batch.
pub const DLOG_BATCH: usize = 16;
/// Dlog: linger bound on a partially-filled commit batch.
pub const DLOG_LINGER: SimTime = SimTime::from_us(3);

fn rkey(mr: MrId) -> RKey {
    RKey(mr.0 as u64)
}

/// One driver per app kind; static dispatch keeps the hot loop monomorphic.
pub enum AppDriver {
    /// Hashtable front-end (consolidation + NUMA affinity when optimized).
    Hashtable(HtDriver),
    /// Shuffle entry pusher (SP16 staging when optimized).
    Shuffle(ShuffleDriver),
    /// Join prober (doorbell batching when optimized).
    Join(JoinDriver),
    /// Log appender (reservation batching when optimized).
    Dlog(DlogDriver),
}

impl Driver for AppDriver {
    fn issue(&mut self, now: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>) {
        match self {
            AppDriver::Hashtable(d) => d.issue(now, tb, out),
            AppDriver::Shuffle(d) => d.issue(now, tb, out),
            AppDriver::Join(d) => d.issue(now, tb, out),
            AppDriver::Dlog(d) => d.issue(now, tb, out),
        }
    }

    fn drain(&mut self, now: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>) {
        match self {
            AppDriver::Hashtable(_) => {}
            AppDriver::Shuffle(d) => d.flush(now, tb, out),
            AppDriver::Join(d) => d.flush(now, tb, out),
            AppDriver::Dlog(d) => d.flush(now, tb, out),
        }
    }

    fn deadline(&self) -> Option<SimTime> {
        match self {
            AppDriver::Hashtable(_) => None,
            AppDriver::Shuffle(d) => d.pending.first().map(|&a| a + SHUFFLE_LINGER),
            AppDriver::Join(d) => d.pending.first().map(|&(a, _)| a + JOIN_LINGER),
            AppDriver::Dlog(d) => d.pending.first().map(|&a| a + DLOG_LINGER),
        }
    }
}

// ---------------------------------------------------------------------------
// Hashtable

/// Open-loop front-end over the two-socket remote hashtable.
///
/// Basic: every op goes cold over the front-end's own-socket connection —
/// ops on the other socket's half of the table cross NUMA on the server.
/// Optimized: per-socket connections with per-socket staging and shadow
/// buffers (cross-socket hand-off costs one IPC hop, and the peer socket's
/// buffers keep the local DMA QPI-free), hot reads served from the local
/// shadow, hot writes absorbed and flushed per 2 KiB block every
/// [`HT_THETA`] writes.
pub struct HtDriver {
    optimized: bool,
    socket: usize,
    conns: [ConnId; 2],
    staging: [MrId; 2],
    shadow: [MrId; 2],
    table: [MrId; 2],
    hot: [MrId; 2],
    zipf: ZipfAlias,
    rng: SimRng,
    ipc_hop: SimTime,
    block_counts: Vec<u32>,
}

impl HtDriver {
    /// Pick the connection for an op bound for `target_socket`, returning
    /// `(conn, lane, hop)` — `lane` is the socket whose QP and local
    /// buffers carry the op (basic always uses the worker's own lane).
    fn route(&self, target_socket: usize) -> (ConnId, usize, SimTime) {
        if !self.optimized {
            (self.conns[self.socket], self.socket, SimTime::ZERO)
        } else if target_socket == self.socket {
            (self.conns[target_socket], target_socket, SimTime::ZERO)
        } else {
            (self.conns[target_socket], target_socket, self.ipc_hop)
        }
    }

    fn issue(&mut self, now: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>) {
        use apps::hashtable::{BLOCK_ENTRIES, RING_BLOCKS, SLOT_BYTES};
        let rank = self.zipf.rank(&mut self.rng);
        let key = fnv64(rank) % HT_KEYS;
        let write = self.rng.gen_f64() < HT_WRITE_FRACTION;
        let hot = self.optimized && rank < HT_KEYS / HT_HOT_INV;
        let socket = (key & 1) as usize;
        let slot = (key >> 1) * SLOT_BYTES;
        let done = if !write {
            if hot {
                // Search answered from the local shadow of the hot block.
                now + tb.cfg.host.l1_touch * 2
            } else {
                let (conn, lane, hop) = self.route(socket);
                let wr = WorkRequest::read(
                    key,
                    Sge::new(self.staging[lane], 1024, 16 + HT_VALUE_LEN),
                    rkey(self.table[socket]),
                    slot,
                );
                let cqe = tb.post_one(now + hop, conn, wr);
                debug_assert_eq!(cqe.status, CqeStatus::Success);
                cqe.at + hop
            }
        } else if hot {
            // Absorb into the shadow; every θ-th write to a block flushes
            // the whole 2 KiB block to the server-side burst-buffer area.
            let hsocket = (rank & 1) as usize;
            let slot_in_area = rank >> 1;
            let block = (slot_in_area / BLOCK_ENTRIES) % RING_BLOCKS;
            let absorb =
                tb.cfg.host.memcpy_cost((16 + HT_VALUE_LEN) as usize) + tb.cfg.host.l1_touch;
            let count = &mut self.block_counts[hsocket * RING_BLOCKS as usize + block as usize];
            *count += 1;
            if *count < HT_THETA {
                now + absorb
            } else {
                *count = 0;
                let (conn, lane, hop) = self.route(hsocket);
                let wr = WorkRequest::write(
                    block,
                    Sge::new(
                        self.shadow[lane],
                        block * BLOCK_ENTRIES * SLOT_BYTES,
                        BLOCK_ENTRIES * SLOT_BYTES,
                    ),
                    rkey(self.hot[hsocket]),
                    block * BLOCK_ENTRIES * SLOT_BYTES,
                );
                let cqe = tb.post_one(now + absorb + hop + tb.cfg.host.l1_touch, conn, wr);
                debug_assert_eq!(cqe.status, CqeStatus::Success);
                cqe.at + hop
            }
        } else {
            let (conn, lane, hop) = self.route(socket);
            let build = tb.cfg.host.memcpy_cost((16 + HT_VALUE_LEN) as usize);
            let wr = WorkRequest::write(
                key,
                Sge::new(self.staging[lane], 16, 16 + HT_VALUE_LEN),
                rkey(self.table[socket]),
                slot,
            );
            let cqe = tb.post_one(now + hop + build, conn, wr);
            debug_assert_eq!(cqe.status, CqeStatus::Success);
            cqe.at + hop
        };
        out.push((now, done));
    }
}

// ---------------------------------------------------------------------------
// Shuffle

/// Open-loop shuffle pusher: each arrival is one 32-byte entry bound for
/// the pod's remote slab. Basic writes entries one by one; optimized
/// stages [`SHUFFLE_SP`] entries locally and flushes them as a single
/// contiguous write (samples resolve at the flush completion).
pub struct ShuffleDriver {
    optimized: bool,
    conn: ConnId,
    staging: MrId,
    slab: RKey,
    /// This worker's disjoint byte range inside the pod slab.
    base: u64,
    cursor: u64,
    pending: Vec<SimTime>,
}

impl ShuffleDriver {
    fn issue(&mut self, now: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>) {
        let build = tb.cfg.host.memcpy_cost(SHUFFLE_ENTRY as usize);
        if !self.optimized {
            let offset = self.base + self.cursor * SHUFFLE_ENTRY;
            self.cursor += 1;
            let wr = WorkRequest::write(
                self.cursor,
                Sge::new(self.staging, 0, SHUFFLE_ENTRY),
                self.slab,
                offset,
            );
            let cqe = tb.post_one(now + build, self.conn, wr);
            debug_assert_eq!(cqe.status, CqeStatus::Success);
            out.push((now, cqe.at));
            return;
        }
        let absorb = build + tb.cfg.host.l1_touch;
        self.cursor += 1;
        self.pending.push(now);
        if self.pending.len() >= SHUFFLE_SP {
            self.flush(now + absorb, tb, out);
        }
    }

    fn flush(&mut self, t: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>) {
        let n = self.pending.len() as u64;
        if n == 0 {
            return;
        }
        let offset = self.base + (self.cursor - n) * SHUFFLE_ENTRY;
        let wr = WorkRequest::write(
            self.cursor,
            Sge::new(self.staging, 0, n * SHUFFLE_ENTRY),
            self.slab,
            offset,
        );
        let cqe = tb.post_one(t, self.conn, wr);
        debug_assert_eq!(cqe.status, CqeStatus::Success);
        for arrival in self.pending.drain(..) {
            out.push((arrival, cqe.at));
        }
    }
}

// ---------------------------------------------------------------------------
// Join

/// Open-loop join prober: each arrival reads one 16-byte tuple at a
/// Zipf-drawn index. Basic posts one read per probe; optimized coalesces
/// [`JOIN_DOORBELL`] probes into one doorbell batch.
pub struct JoinDriver {
    optimized: bool,
    conn: ConnId,
    staging: MrId,
    tuples: RKey,
    zipf: ZipfAlias,
    rng: SimRng,
    pending: Vec<(SimTime, u64)>,
}

impl JoinDriver {
    fn issue(&mut self, now: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>) {
        let key = self.zipf.scrambled_key(&mut self.rng);
        if !self.optimized {
            let wr = WorkRequest::read(
                key,
                Sge::new(self.staging, 0, JOIN_TUPLE_BYTES),
                self.tuples,
                key * JOIN_TUPLE_BYTES,
            );
            let cqe = tb.post_one(now, self.conn, wr);
            debug_assert_eq!(cqe.status, CqeStatus::Success);
            out.push((now, cqe.at + apps::join::PROBE_COST));
            return;
        }
        self.pending.push((now, key));
        if self.pending.len() >= JOIN_DOORBELL {
            self.flush(now, tb, out);
        }
    }

    fn flush(&mut self, t: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>) {
        if self.pending.is_empty() {
            return;
        }
        let wrs: Vec<WorkRequest> = self
            .pending
            .iter()
            .enumerate()
            .map(|(i, &(_, key))| {
                WorkRequest::read(
                    i as u64,
                    Sge::new(self.staging, i as u64 * JOIN_TUPLE_BYTES, JOIN_TUPLE_BYTES),
                    self.tuples,
                    key * JOIN_TUPLE_BYTES,
                )
            })
            .collect();
        let cqes = tb.post_scratch(t, self.conn, &wrs);
        debug_assert_eq!(cqes.len(), self.pending.len());
        let dones: Vec<SimTime> = cqes.iter().map(|c| c.at + apps::join::PROBE_COST).collect();
        for ((arrival, _), done) in self.pending.drain(..).zip(dones) {
            out.push((arrival, done));
        }
    }
}

// ---------------------------------------------------------------------------
// Dlog

/// Open-loop log appender: each arrival commits one 128-byte record via
/// reserve (remote FAA on the pod's shared counter) + write. Basic
/// reserves per record; optimized reserves [`DLOG_BATCH`] records with one
/// FAA and appends them with one write.
pub struct DlogDriver {
    optimized: bool,
    conn: ConnId,
    staging: MrId,
    log: RKey,
    counter: RKey,
    pending: Vec<SimTime>,
}

impl DlogDriver {
    fn commit(&mut self, t: SimTime, tb: &mut Testbed, records: u64) -> SimTime {
        let bytes = records * DLOG_RECORD;
        let faa = tb.post_one(
            t,
            self.conn,
            WorkRequest {
                wr_id: WrId(records),
                kind: VerbKind::FetchAdd { delta: bytes },
                sgl: Sge::new(self.staging, 0, 8).into(),
                remote: Some((self.counter, 0)),
                signaled: true,
            },
        );
        debug_assert_eq!(faa.status, CqeStatus::Success);
        let wr =
            WorkRequest::write(records, Sge::new(self.staging, 16, bytes), self.log, faa.old_value);
        let cqe = tb.post_one(faa.at, self.conn, wr);
        debug_assert_eq!(cqe.status, CqeStatus::Success);
        cqe.at
    }

    fn issue(&mut self, now: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>) {
        let t = now + apps::dlog::RECORD_CPU + tb.cfg.host.memcpy_cost(DLOG_RECORD as usize);
        if !self.optimized {
            let done = self.commit(t, tb, 1);
            out.push((now, done));
            return;
        }
        self.pending.push(now);
        if self.pending.len() >= DLOG_BATCH {
            self.flush(t, tb, out);
        }
    }

    fn flush(&mut self, t: SimTime, tb: &mut Testbed, out: &mut Vec<(SimTime, SimTime)>) {
        let n = self.pending.len() as u64;
        if n == 0 {
            return;
        }
        let done = self.commit(t, tb, n);
        for arrival in self.pending.drain(..) {
            out.push((arrival, done));
        }
    }
}

// ---------------------------------------------------------------------------
// Topology

use crate::engine::OpenLoopWorker;

/// Build the pod cluster and one open-loop worker per (pod, lane).
///
/// Returns the testbed plus `(client machine, worker)` pairs in global
/// worker-index order — the order stats are folded in.
pub fn build(cfg: &TrafficConfig) -> (Testbed, Vec<(usize, OpenLoopWorker)>) {
    use apps::hashtable::{BLOCK_ENTRIES, RING_BLOCKS, SLOT_BYTES};
    let machines = cfg.pods * 2;
    let mut tb = Testbed::new(ClusterConfig { machines, ..Default::default() });
    let root = SimRng::new(cfg.seed);
    let rate = cfg.rate_per_worker();
    let process = if cfg.bursty {
        ArrivalProcessChoice::Bursty(rate)
    } else {
        ArrivalProcessChoice::Poisson(rate)
    };
    let ring_bytes = RING_BLOCKS * BLOCK_ENTRIES * SLOT_BYTES;
    let mut workers = Vec::with_capacity(cfg.workers());
    for pod in 0..cfg.pods {
        let client = pod * 2;
        let server = pod * 2 + 1;
        // Per-pod served memory.
        let table = [
            tb.register(server, 0, (HT_KEYS / 2 + 1) * SLOT_BYTES),
            tb.register(server, 1, (HT_KEYS / 2 + 1) * SLOT_BYTES),
        ];
        let slab_bytes = cfg.workers_per_pod as u64 * cfg.ops_per_worker * SHUFFLE_ENTRY + 4096;
        let slab = tb.register(server, 0, slab_bytes);
        let tuples = tb.register(server, 0, JOIN_TUPLES * JOIN_TUPLE_BYTES + 4096);
        let log_bytes = cfg.workers_per_pod as u64 * cfg.ops_per_worker * DLOG_RECORD + 4096;
        let log = tb.register(server, 0, log_bytes);
        let counter = tb.register(server, 0, 64);
        for lane in 0..cfg.workers_per_pod {
            let widx = pod * cfg.workers_per_pod + lane;
            let socket = lane % 2;
            let client_ep = |port: usize| Endpoint { machine: client, port, core_socket: socket };
            let driver = match cfg.app {
                AppKind::Hashtable => {
                    // Per-socket staging and shadow: ops routed to the
                    // peer socket's QP use buffers on that socket, so no
                    // local DMA crosses QPI.
                    let staging = [tb.register(client, 0, 4096), tb.register(client, 1, 4096)];
                    let shadow =
                        [tb.register(client, 0, ring_bytes), tb.register(client, 1, ring_bytes)];
                    let hot =
                        [tb.register(server, 0, ring_bytes), tb.register(server, 1, ring_bytes)];
                    let conns = [
                        tb.connect(client_ep(0), Endpoint::affine(server, 0)),
                        tb.connect(client_ep(1), Endpoint::affine(server, 1)),
                    ];
                    AppDriver::Hashtable(HtDriver {
                        optimized: cfg.optimized,
                        socket,
                        conns,
                        staging,
                        shadow,
                        table,
                        hot,
                        zipf: ZipfAlias::paper(HT_KEYS),
                        rng: root.split(2000 + widx as u64),
                        ipc_hop: remem::DEFAULT_IPC_HOP,
                        block_counts: vec![0; 2 * RING_BLOCKS as usize],
                    })
                }
                AppKind::Shuffle => {
                    let staging = tb.register(client, socket, 4096);
                    let conn = tb.connect(client_ep(socket), Endpoint::affine(server, 0));
                    AppDriver::Shuffle(ShuffleDriver {
                        optimized: cfg.optimized,
                        conn,
                        staging,
                        slab: rkey(slab),
                        base: lane as u64 * cfg.ops_per_worker * SHUFFLE_ENTRY,
                        cursor: 0,
                        pending: Vec::new(),
                    })
                }
                AppKind::Join => {
                    let staging = tb.register(client, socket, 4096);
                    let conn = tb.connect(client_ep(socket), Endpoint::affine(server, 0));
                    AppDriver::Join(JoinDriver {
                        optimized: cfg.optimized,
                        conn,
                        staging,
                        tuples: rkey(tuples),
                        zipf: ZipfAlias::paper(JOIN_TUPLES),
                        rng: root.split(2000 + widx as u64),
                        pending: Vec::new(),
                    })
                }
                AppKind::Dlog => {
                    let staging =
                        tb.register(client, socket, DLOG_BATCH as u64 * DLOG_RECORD + 4096);
                    let conn = tb.connect(client_ep(socket), Endpoint::affine(server, 0));
                    AppDriver::Dlog(DlogDriver {
                        optimized: cfg.optimized,
                        conn,
                        staging,
                        log: rkey(log),
                        counter: rkey(counter),
                        pending: Vec::new(),
                    })
                }
            };
            let worker =
                OpenLoopWorker::new(driver, process.resolve(), root.split(1000 + widx as u64), cfg);
            workers.push((client, worker));
        }
    }
    (tb, workers)
}

/// Internal: defer the Poisson/MMPP choice so each worker gets the same
/// process parameters without cloning through the config.
enum ArrivalProcessChoice {
    Poisson(f64),
    Bursty(f64),
}

impl ArrivalProcessChoice {
    fn resolve(&self) -> crate::arrivals::ArrivalProcess {
        match *self {
            ArrivalProcessChoice::Poisson(rate) => {
                crate::arrivals::ArrivalProcess::Poisson { rate_mops: rate }
            }
            ArrivalProcessChoice::Bursty(rate) => crate::arrivals::ArrivalProcess::bursty(rate),
        }
    }
}

// ---------------------------------------------------------------------------
// Verb programs

/// The analyzable form of one worker's verb sequence against its pod —
/// what `bench --lint` feeds through `verbcheck` for each traffic
/// experiment. Mirrors the driver geometry: same regions, same sockets,
/// same request shapes.
pub fn verb_program(app: AppKind, optimized: bool) -> verbcheck::VerbProgram {
    use apps::hashtable::{BLOCK_ENTRIES, RING_BLOCKS, SLOT_BYTES};
    let mut p = verbcheck::VerbProgram::new();
    match app {
        AppKind::Hashtable => {
            let ring_bytes = RING_BLOCKS * BLOCK_ENTRIES * SLOT_BYTES;
            let (table0, table1, hot0, hot1) = (MrId(0), MrId(1), MrId(2), MrId(3));
            p.mr(1, table0, 0, (HT_KEYS / 2 + 1) * SLOT_BYTES);
            p.mr(1, table1, 1, (HT_KEYS / 2 + 1) * SLOT_BYTES);
            p.mr(1, hot0, 0, ring_bytes);
            p.mr(1, hot1, 1, ring_bytes);
            let (staging0, staging1, shadow0) = (MrId(0), MrId(1), MrId(2));
            p.mr(0, staging0, 0, 4096);
            p.mr(0, staging1, 1, 4096);
            p.mr(0, shadow0, 0, ring_bytes);
            let (qp0, qp1) = (QpNum(0), QpNum(1));
            p.qp(qp0, 0, 1, 0, 0);
            p.qp(qp1, 0, 1, 1, 1);
            // Cold search on the even-socket half (key 4 → slot 2).
            p.post(
                qp0,
                WorkRequest::read(
                    4,
                    Sge::new(staging0, 1024, 16 + HT_VALUE_LEN),
                    rkey(table0),
                    2 * SLOT_BYTES,
                ),
            );
            p.poll(qp0, 1);
            // Cold insert on the odd-socket half (key 7 → slot 3). Basic
            // routes through the own-socket QP with its own-socket staging
            // (server crosses NUMA); optimized routes through the affine
            // QP with the peer socket's staging buffer.
            let (qp_cold, staging_cold) = if optimized { (qp1, staging1) } else { (qp0, staging0) };
            p.post(
                qp_cold,
                WorkRequest::write(
                    7,
                    Sge::new(staging_cold, 16, 16 + HT_VALUE_LEN),
                    rkey(table1),
                    3 * SLOT_BYTES,
                ),
            );
            p.poll(qp_cold, 1);
            if optimized {
                // Block flush of the hot burst-buffer area (block 0).
                p.post(
                    qp0,
                    WorkRequest::write(
                        0,
                        Sge::new(shadow0, 0, BLOCK_ENTRIES * SLOT_BYTES),
                        rkey(hot0),
                        0,
                    ),
                );
                p.poll(qp0, 1);
            }
        }
        AppKind::Shuffle => {
            let slab = MrId(0);
            p.mr(1, slab, 0, 4 * SHUFFLE_SP as u64 * SHUFFLE_ENTRY + 4096);
            let staging = MrId(0);
            p.mr(0, staging, 0, 4096);
            let qp = QpNum(0);
            p.qp(qp, 0, 1, 0, 0);
            if optimized {
                // Two staged-push flushes of SP contiguous entries.
                for b in 0..2u64 {
                    let bytes = SHUFFLE_SP as u64 * SHUFFLE_ENTRY;
                    p.post(
                        qp,
                        WorkRequest::write(b, Sge::new(staging, 0, bytes), rkey(slab), b * bytes),
                    );
                    p.poll(qp, 1);
                }
            } else {
                // Entry-at-a-time writes.
                for e in 0..3u64 {
                    p.post(
                        qp,
                        WorkRequest::write(
                            e,
                            Sge::new(staging, 0, SHUFFLE_ENTRY),
                            rkey(slab),
                            e * SHUFFLE_ENTRY,
                        ),
                    );
                    p.poll(qp, 1);
                }
            }
        }
        AppKind::Join => {
            let tuples = MrId(0);
            p.mr(1, tuples, 0, JOIN_TUPLES * JOIN_TUPLE_BYTES + 4096);
            let staging = MrId(0);
            p.mr(0, staging, 0, 4096);
            let qp = QpNum(0);
            p.qp(qp, 0, 1, 0, 0);
            if optimized {
                // One doorbell batch of JOIN_DOORBELL probes, one poll train.
                for i in 0..JOIN_DOORBELL as u64 {
                    let key = fnv64(i) % JOIN_TUPLES;
                    p.post(
                        qp,
                        WorkRequest::read(
                            i,
                            Sge::new(staging, i * JOIN_TUPLE_BYTES, JOIN_TUPLE_BYTES),
                            rkey(tuples),
                            key * JOIN_TUPLE_BYTES,
                        ),
                    );
                }
                p.poll(qp, JOIN_DOORBELL);
            } else {
                for i in 0..3u64 {
                    let key = fnv64(i) % JOIN_TUPLES;
                    p.post(
                        qp,
                        WorkRequest::read(
                            i,
                            Sge::new(staging, 0, JOIN_TUPLE_BYTES),
                            rkey(tuples),
                            key * JOIN_TUPLE_BYTES,
                        ),
                    );
                    p.poll(qp, 1);
                }
            }
        }
        AppKind::Dlog => {
            let batch = if optimized { DLOG_BATCH as u64 } else { 1 };
            let (log, counter) = (MrId(0), MrId(1));
            p.mr(1, log, 0, 3 * batch * DLOG_RECORD + 4096);
            p.mr(1, counter, 0, 64);
            let staging = MrId(0);
            p.mr(0, staging, 0, DLOG_BATCH as u64 * DLOG_RECORD + 4096);
            let qp = QpNum(0);
            p.qp(qp, 0, 1, 0, 0);
            let bytes = batch * DLOG_RECORD;
            let mut reserved = 0u64;
            for b in 0..3u64 {
                p.post(
                    qp,
                    WorkRequest {
                        wr_id: WrId(b),
                        kind: VerbKind::FetchAdd { delta: bytes },
                        sgl: Sge::new(staging, 0, 8).into(),
                        remote: Some((rkey(counter), 0)),
                        signaled: true,
                    },
                );
                p.poll(qp, 1);
                p.post(
                    qp,
                    WorkRequest::write(100 + b, Sge::new(staging, 16, bytes), rkey(log), reserved),
                );
                p.poll(qp, 1);
                reserved += bytes;
            }
        }
    }
    p
}
