//! End-to-end checks on the open-loop traffic engine: determinism across
//! every run mode, queueing behaviour under load, optimization wins, and
//! verbcheck cleanliness of every app's verb program.

use rnicsim::PROFILES;
use simcore::SimTime;
use traffic::{find_knee, run_traffic, sweep, AppKind, TrafficConfig};

fn quick(app: AppKind, optimized: bool, offered_mops: f64) -> TrafficConfig {
    TrafficConfig {
        app,
        optimized,
        offered_mops,
        ops_per_worker: 400,
        warmup: SimTime::from_us(20),
        ..Default::default()
    }
}

#[test]
fn every_mode_is_byte_identical_for_every_app_and_variant() {
    for app in AppKind::all() {
        for optimized in [false, true] {
            let base = quick(app, optimized, 0.4);
            let serial = run_traffic(&base);
            assert!(serial.ops > 0, "{}: no samples", app.name());

            // Parallel conservative engine (shards > 1 with enough pods).
            let sharded = run_traffic(&TrafficConfig { shards: 2, ..base.clone() });
            assert_eq!(
                serial.hist.digest(),
                sharded.hist.digest(),
                "{} optimized={optimized}: shards=2 diverged",
                app.name()
            );

            // Unbatched device pipeline must agree too.
            let was = cluster::batched_default();
            cluster::set_batched_default(!was);
            let flipped = run_traffic(&base);
            cluster::set_batched_default(was);
            assert_eq!(
                serial.hist.digest(),
                flipped.hist.digest(),
                "{} optimized={optimized}: batched flip diverged",
                app.name()
            );

            // Windowed series and meters fold identically as well.
            assert_eq!(serial.ops, sharded.ops);
            assert_eq!(serial.finished, sharded.finished);
            let (a, b): (Vec<_>, Vec<_>) = (
                serial.series.windows().map(|(t, h)| (t, h.digest())).collect(),
                sharded.series.windows().map(|(t, h)| (t, h.digest())).collect(),
            );
            assert_eq!(a, b, "{}: series diverged", app.name());
        }
    }
}

#[test]
fn tail_latency_grows_with_offered_load() {
    for app in AppKind::all() {
        let pts = sweep(&quick(app, false, 0.0), &[0.2, 8.0]);
        assert!(
            pts[1].p99_us > pts[0].p99_us * 1.3,
            "{}: p99 {} at 0.2 MOPS vs {} at 8 MOPS",
            app.name(),
            pts[0].p99_us,
            pts[1].p99_us
        );
        // Low-load p50 should sit near the unloaded service time, i.e.
        // single-digit microseconds for every app.
        assert!(pts[0].p50_us < 10.0, "{}: unloaded p50 {}", app.name(), pts[0].p50_us);
    }
}

#[test]
fn bursty_arrivals_have_fatter_tails_at_equal_load() {
    let base = quick(AppKind::Join, false, 2.0);
    let poisson = run_traffic(&base);
    let bursty = run_traffic(&TrafficConfig { bursty: true, ..base });
    assert!(
        bursty.q_us(0.999) > poisson.q_us(0.999),
        "bursty p999 {} vs poisson {}",
        bursty.q_us(0.999),
        poisson.q_us(0.999)
    );
}

#[test]
fn knee_finder_brackets_and_optimization_moves_the_knee() {
    // One app end-to-end through find_knee is enough for CI time; the
    // committed BENCH_apps.json covers all four.
    let app = AppKind::Shuffle;
    let slo = app.default_slo();
    let basic = find_knee(&quick(app, false, 0.0), slo);
    let opt = find_knee(&quick(app, true, 0.0), slo);
    assert!(basic.knee_mops > 0.0, "basic knee collapsed");
    assert!(
        opt.knee_mops > basic.knee_mops * 1.3,
        "staged push should lift the knee: basic {} vs optimized {}",
        basic.knee_mops,
        opt.knee_mops
    );
    assert!(basic.p99_us_at_knee <= slo.as_us());
    assert!(opt.p99_us_at_knee <= slo.as_us());
}

#[test]
fn verb_programs_are_clean_on_every_caps_profile() {
    for app in AppKind::all() {
        for optimized in [false, true] {
            let prog = traffic::verb_program(app, optimized);
            for (name, caps) in PROFILES {
                let diags = verbcheck::analyze(&prog, caps);
                assert!(
                    !verbcheck::has_errors(&diags),
                    "{} optimized={optimized} on {name}: {}",
                    app.name(),
                    diags.iter().map(verbcheck::Diagnostic::render).collect::<String>()
                );
            }
        }
    }
}

#[test]
fn linger_bounds_batch_wait_at_trickle_load() {
    // At 0.02 MOPS aggregate the mean inter-arrival gap per worker is
    // 200 µs — far beyond every linger bound. Batching variants must
    // still keep p99 within (linger + a loaded flush), not a full batch
    // fill (~16 gaps ≈ 3 ms).
    for app in [AppKind::Shuffle, AppKind::Join, AppKind::Dlog] {
        let r = run_traffic(&TrafficConfig { ops_per_worker: 150, ..quick(app, true, 0.02) });
        assert!(r.q_us(0.99) < 20.0, "{}: lingering batch p99 {} µs", app.name(), r.q_us(0.99));
    }
}
