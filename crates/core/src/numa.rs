//! NUMA-aware connection routing: matched sockets and the proxy socket.
//!
//! §II-B4/§III-D: every NIC port is affiliated with one socket, so a
//! remote-memory request can cross QPI (a) on the requester (core or
//! buffer off the port's socket), and (b) on the responder (target region
//! off the port's socket). All-to-all socket connections avoid (b) but
//! need `s × s × 2m` QPs; the paper's **proxy socket** design keeps the
//! QP count at `s × 2m` by connecting only matched sockets and handing
//! mis-matched requests to the local socket that *is* matched, over a
//! shared-memory queue.

use cluster::{ConnId, Endpoint, Testbed};
use simcore::SimTime;
use std::collections::HashMap;

/// How requests from a local socket reach memory on a remote socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NumaMode {
    /// Connect matched sockets only; a request for an unmatched remote
    /// socket goes over the matched connection and pays the responder-side
    /// QPI crossing (paths ②→④ in the paper's Fig 9).
    DirectCross,
    /// Connect matched sockets only; a request for an unmatched remote
    /// socket is forwarded to the local *proxy* socket over a
    /// shared-memory queue and issued fully affine (paths ①→②).
    Proxy,
    /// Connect every local socket to every remote socket (`s×` more QPs);
    /// always affine but pressures the QP-context cache at scale.
    AllToAll,
}

/// One machine's routed connections to every other machine.
pub struct SocketMesh {
    mode: NumaMode,
    sockets: usize,
    conns: HashMap<(usize, usize, usize), ConnId>,
    ipc_hop: SimTime,
}

/// A routing decision: which connection to use and the CPU-side costs to
/// add before issuing and after completion (proxy queue hops).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Connection to post on.
    pub conn: ConnId,
    /// Latency added before the verb is posted (request hand-off).
    pub pre: SimTime,
    /// Latency added after the CQE (result hand-back).
    pub post: SimTime,
}

/// Default one-way cost of the proxy's shared-memory message queue:
/// enqueue, cache-line transfer to the other socket, dequeue.
pub const DEFAULT_IPC_HOP: SimTime = SimTime::from_ns(60);

impl SocketMesh {
    /// Build the mesh for machine `me`: connections to every other machine
    /// according to `mode`. In matched-only modes this creates `s` QPs per
    /// remote machine; in `AllToAll`, `s²`.
    pub fn build(tb: &mut Testbed, me: usize, mode: NumaMode) -> Self {
        let sockets = tb.cfg.host.sockets;
        let mut conns = HashMap::new();
        for rm in 0..tb.machine_count() {
            if rm == me {
                continue;
            }
            for ls in 0..sockets {
                for rs in 0..sockets {
                    let wanted = match mode {
                        NumaMode::AllToAll => true,
                        NumaMode::DirectCross | NumaMode::Proxy => ls == rs,
                    };
                    if wanted {
                        let conn = tb.connect(Endpoint::affine(me, ls), Endpoint::affine(rm, rs));
                        conns.insert((ls, rm, rs), conn);
                    }
                }
            }
        }
        SocketMesh { mode, sockets, conns, ipc_hop: DEFAULT_IPC_HOP }
    }

    /// Override the proxy queue hop cost.
    pub fn with_ipc_hop(mut self, hop: SimTime) -> Self {
        self.ipc_hop = hop;
        self
    }

    /// The routing mode.
    pub fn mode(&self) -> NumaMode {
        self.mode
    }

    /// Total QPs this mesh created on the local NIC.
    pub fn qp_count(&self) -> usize {
        self.conns.len()
    }

    /// Route a request issued by a thread on `from_socket` targeting
    /// memory on `(remote_machine, remote_socket)`.
    pub fn route(&self, from_socket: usize, remote_machine: usize, remote_socket: usize) -> Route {
        assert!(from_socket < self.sockets && remote_socket < self.sockets);
        match self.mode {
            NumaMode::AllToAll => Route {
                conn: self.conns[&(from_socket, remote_machine, remote_socket)],
                pre: SimTime::ZERO,
                post: SimTime::ZERO,
            },
            NumaMode::DirectCross => Route {
                // Matched connection from our own socket; the responder
                // crossing (if any) is charged by the testbed because the
                // target region's socket differs from the server port's.
                conn: self.conns[&(from_socket, remote_machine, from_socket)],
                pre: SimTime::ZERO,
                post: SimTime::ZERO,
            },
            NumaMode::Proxy => {
                if from_socket == remote_socket {
                    Route {
                        conn: self.conns[&(from_socket, remote_machine, remote_socket)],
                        pre: SimTime::ZERO,
                        post: SimTime::ZERO,
                    }
                } else {
                    // Hand off to the matched local socket; pay the queue
                    // both ways, then run fully affine.
                    Route {
                        conn: self.conns[&(remote_socket, remote_machine, remote_socket)],
                        pre: self.ipc_hop,
                        post: self.ipc_hop,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterConfig;
    use rnicsim::{RKey, Sge, WorkRequest};

    fn testbed(machines: usize) -> Testbed {
        Testbed::new(ClusterConfig { machines, ..Default::default() })
    }

    #[test]
    fn qp_budget_matches_paper_formula() {
        // s×(m−1) connections per machine in matched modes, s²×(m−1) in
        // all-to-all (the paper counts both QP endpoints: ours is per-NIC).
        let mut tb = testbed(8);
        let mesh = SocketMesh::build(&mut tb, 0, NumaMode::Proxy);
        assert_eq!(mesh.qp_count(), 2 * 7);
        let mut tb2 = testbed(8);
        let all = SocketMesh::build(&mut tb2, 0, NumaMode::AllToAll);
        assert_eq!(all.qp_count(), 4 * 7);
    }

    #[test]
    fn matched_requests_route_directly_in_every_mode() {
        for mode in [NumaMode::DirectCross, NumaMode::Proxy, NumaMode::AllToAll] {
            let mut tb = testbed(2);
            let mesh = SocketMesh::build(&mut tb, 0, mode);
            let r = mesh.route(1, 1, 1);
            assert_eq!(r.pre, SimTime::ZERO);
            assert_eq!(r.post, SimTime::ZERO);
        }
    }

    #[test]
    fn proxy_pays_queue_hops_for_unmatched() {
        let mut tb = testbed(2);
        let mesh = SocketMesh::build(&mut tb, 0, NumaMode::Proxy);
        let r = mesh.route(0, 1, 1);
        assert_eq!(r.pre, DEFAULT_IPC_HOP);
        assert_eq!(r.post, DEFAULT_IPC_HOP);
        // And the chosen connection is the fully affine one (socket 1 to
        // socket 1) — identical to what socket 1 itself would use.
        assert_eq!(r.conn, mesh.route(1, 1, 1).conn);
    }

    #[test]
    fn proxy_end_to_end_beats_direct_cross() {
        // Write 64 B to remote socket 1's memory from a thread on socket 0,
        // both ways, and compare total times.
        let run = |mode: NumaMode| {
            let mut tb = testbed(2);
            let mesh = SocketMesh::build(&mut tb, 0, mode);
            let src = tb.register(0, 0, 4096);
            let dst = tb.register(1, 1, 4096); // memory on remote socket 1
            let route = mesh.route(0, 1, 1);
            // Warm, then measure.
            let wr = |id| WorkRequest::write(id, Sge::new(src, 0, 64), RKey(dst.0 as u64), 0);
            let w = tb.post_one(route.pre, route.conn, wr(0));
            let start = w.at;
            let c = tb.post_one(start + route.pre, route.conn, wr(1));
            (c.at + route.post) - start
        };
        let direct = run(NumaMode::DirectCross);
        let proxy = run(NumaMode::Proxy);
        assert!(proxy < direct, "proxy {proxy} !< direct {direct}");
    }

    #[test]
    #[should_panic]
    fn unmatched_socket_out_of_range_panics() {
        let mut tb = testbed(2);
        let mesh = SocketMesh::build(&mut tb, 0, NumaMode::Proxy);
        mesh.route(5, 1, 0);
    }
}
