//! Multi-version remote entries: lock-free concurrent writes for cold keys.
//!
//! §IV-B: the disaggregated hashtable handles concurrency on *cold*
//! entries with a multi-version scheme — a writer first draws a version
//! from a remote fetch-and-add, then writes the value into the slot
//! `version % k` of a k-slot ring, tagging the slot with the version. A
//! reader reads the version counter and then the owning slot; a torn read
//! (slot overwritten between the two steps) is detected by the slot tag
//! and retried.
//!
//! Remote layout of one entry (`k` slots of `8 + value_len` bytes):
//!
//! ```text
//! [ counter: u64 ][ slot0: tag u64 | value ][ slot1: tag u64 | value ] ...
//! ```

use crate::sequencer::RemoteSequencer;
use cluster::{ConnId, Testbed};
use rnicsim::{CqeStatus, MrId, RKey, Sge, WorkRequest};
use simcore::SimTime;

/// A k-slot multi-version entry in remote memory.
#[derive(Clone, Copy, Debug)]
pub struct VersionedEntry {
    /// Remote region holding the entry.
    pub rkey: RKey,
    /// Offset of the entry header (the version counter).
    pub base: u64,
    /// Number of value slots.
    pub slots: u64,
    /// Bytes per value.
    pub value_len: u64,
}

/// Result of a versioned write.
#[derive(Clone, Copy, Debug)]
pub struct VersionedWrite {
    /// Version this write owns.
    pub version: u64,
    /// When the value write completed remotely.
    pub at: SimTime,
}

/// Result of a versioned read.
#[derive(Clone, Debug)]
pub struct VersionedRead {
    /// Version observed (the latest committed at read time).
    pub version: u64,
    /// The value bytes.
    pub value: Vec<u8>,
    /// When the read completed.
    pub at: SimTime,
}

impl VersionedEntry {
    /// Total remote bytes one entry occupies.
    pub fn footprint(&self) -> u64 {
        8 + self.slots * (8 + self.value_len)
    }

    fn slot_offset(&self, version: u64) -> u64 {
        self.base + 8 + (version % self.slots) * (8 + self.value_len)
    }

    /// Write `value`: draw a version via remote FAA, then write
    /// `[tag | value]` into the owning slot with one RDMA Write.
    ///
    /// `staging` is a local region with at least `8 + value_len` scratch
    /// bytes at `staging_off` (the tagged value is built there first).
    pub fn write(
        &self,
        tb: &mut Testbed,
        conn: ConnId,
        now: SimTime,
        value: &[u8],
        staging: MrId,
        staging_off: u64,
    ) -> VersionedWrite {
        assert_eq!(value.len() as u64, self.value_len, "value length mismatch");
        let seq = RemoteSequencer { rkey: self.rkey, offset: self.base };
        let ticket = seq.next(tb, conn, now, Sge::new(staging, staging_off, 8));
        // Version drawn: the *next* version is ticket.value + 1 so that an
        // entry with counter 0 reads as "no committed version yet".
        let version = ticket.value + 1;
        let client = tb.client_of(conn);
        let mut buf = Vec::with_capacity(8 + value.len());
        buf.extend_from_slice(&version.to_le_bytes());
        buf.extend_from_slice(value);
        tb.machine_mut(client.machine).mem.write(staging, staging_off, &buf);
        let build_cost = tb.cfg.host.memcpy_cost(buf.len());
        let wr = WorkRequest::write(
            version,
            Sge::new(staging, staging_off, buf.len() as u64),
            self.rkey,
            self.slot_offset(version),
        );
        let cqe = tb.post_one(ticket.at + build_cost, conn, wr);
        assert_eq!(cqe.status, CqeStatus::Success);
        VersionedWrite { version, at: cqe.at }
    }

    /// Read the latest committed value: read the counter, then the owning
    /// slot; retry if the slot tag doesn't match (torn by a concurrent
    /// writer lapping the ring). Returns `None` if no version exists yet.
    pub fn read(
        &self,
        tb: &mut Testbed,
        conn: ConnId,
        now: SimTime,
        staging: MrId,
        staging_off: u64,
    ) -> Option<VersionedRead> {
        let client = tb.client_of(conn);
        let mut t = now;
        loop {
            // Step 1: read the version counter.
            let wr = WorkRequest::read(0, Sge::new(staging, staging_off, 8), self.rkey, self.base);
            let cqe = tb.post_one(t, conn, wr);
            assert_eq!(cqe.status, CqeStatus::Success);
            let version = tb.machine(client.machine).mem.load_u64(staging, staging_off);
            if version == 0 {
                return None;
            }
            // Step 2: read the owning slot.
            let slot_len = 8 + self.value_len;
            let wr = WorkRequest::read(
                1,
                Sge::new(staging, staging_off, slot_len),
                self.rkey,
                self.slot_offset(version),
            );
            let cqe2 = tb.post_one(cqe.at, conn, wr);
            assert_eq!(cqe2.status, CqeStatus::Success);
            let tag = tb.machine(client.machine).mem.load_u64(staging, staging_off);
            if tag == version {
                let mut value = Vec::with_capacity(self.value_len as usize);
                tb.machine(client.machine).mem.read_into(
                    staging,
                    staging_off + 8,
                    self.value_len,
                    &mut value,
                );
                return Some(VersionedRead { version, value, at: cqe2.at });
            }
            // Torn: a writer lapped us. Retry from the new counter.
            t = cqe2.at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, Endpoint};

    fn setup() -> (Testbed, ConnId, MrId, VersionedEntry) {
        let mut tb = Testbed::new(ClusterConfig::two_machines());
        let staging = tb.register(0, 1, 4096);
        let backing = tb.register(1, 1, 4096);
        let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
        let entry =
            VersionedEntry { rkey: RKey(backing.0 as u64), base: 64, slots: 4, value_len: 16 };
        (tb, conn, staging, entry)
    }

    #[test]
    fn read_before_any_write_is_none() {
        let (mut tb, conn, staging, entry) = setup();
        assert!(entry.read(&mut tb, conn, SimTime::ZERO, staging, 0).is_none());
    }

    #[test]
    fn write_then_read_round_trips() {
        let (mut tb, conn, staging, entry) = setup();
        let w = entry.write(&mut tb, conn, SimTime::ZERO, b"sixteen bytes!!!", staging, 0);
        assert_eq!(w.version, 1);
        let r = entry.read(&mut tb, conn, w.at, staging, 0).expect("committed");
        assert_eq!(r.version, 1);
        assert_eq!(r.value, b"sixteen bytes!!!");
    }

    #[test]
    fn successive_writes_bump_versions_and_rotate_slots() {
        let (mut tb, conn, staging, entry) = setup();
        let mut t = SimTime::ZERO;
        for i in 1..=6u64 {
            let val = format!("v-{i:010}....");
            let w = entry.write(&mut tb, conn, t, val.as_bytes(), staging, 0);
            assert_eq!(w.version, i);
            t = w.at;
        }
        let r = entry.read(&mut tb, conn, t, staging, 0).expect("committed");
        assert_eq!(r.version, 6);
        assert_eq!(r.value, b"v-0000000006....");
        // With 4 slots, versions 3..6 are resident; version 6 lives in
        // slot 6 % 4 = 2.
        let slot2 = entry.base + 8 + 2 * (8 + 16);
        let m = tb.machine(1);
        // Find the backing MR (id 0 on machine 1).
        assert_eq!(m.mem.load_u64(rnicsim::MrId(0), slot2), 6);
    }

    #[test]
    fn footprint_accounts_header_and_slots() {
        let (_tb, _conn, _staging, entry) = setup();
        assert_eq!(entry.footprint(), 8 + 4 * 24);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_value_length_is_rejected() {
        let (mut tb, conn, staging, entry) = setup();
        entry.write(&mut tb, conn, SimTime::ZERO, b"short", staging, 0);
    }
}
