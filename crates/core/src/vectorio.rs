//! Vector IO: the three remote-memory batching strategies of §III-A.
//!
//! All three move `N` scattered local buffers to remote memory; they
//! differ in *who gathers* and *how many PCIe/network transactions* are
//! spent:
//!
//! | strategy   | gathers      | MMIOs | RDMA ops | network RTTs |
//! |------------|--------------|-------|----------|--------------|
//! | `Sp`       | CPU (memcpy) | 1     | 1        | 1            |
//! | `Doorbell` | —            | 1     | N        | 1 (pipelined)|
//! | `Sgl`      | RNIC DMA     | 1     | 1        | 1            |
//!
//! `Sp` burns host CPU and memory bandwidth but posts one large write;
//! `Doorbell` only saves MMIOs, every WQE still occupies the NIC's
//! execution unit; `Sgl` offloads gathering to the NIC's scatter/gather
//! engine but pays a per-SGE setup cost that grows with payload size.

use cluster::{ConnId, Testbed};
use rnicsim::{CqeStatus, MrId, RKey, Sge, VerbKind, WorkRequest, WrId};
use simcore::SimTime;

/// Which batching strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Software protocol: CPU-gather into a staging buffer, one big write.
    Sp,
    /// Doorbell batching: N WRs, one MMIO.
    Doorbell,
    /// Scatter/gather list: one WR with N SGEs.
    Sgl,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [Strategy::Sp, Strategy::Doorbell, Strategy::Sgl];

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Sp => "SP",
            Strategy::Doorbell => "Doorbell",
            Strategy::Sgl => "SGL",
        }
    }
}

/// Where a batch lands remotely.
#[derive(Clone, Debug)]
pub enum RemoteDst {
    /// One contiguous remote span starting at this offset (SP and SGL
    /// coalesce into this; Doorbell writes buffers back-to-back into it).
    Contiguous(RKey, u64),
    /// One remote offset per buffer (only Doorbell supports this — the
    /// paper's §III-A: SP/SGL can only scatter/gather on one side).
    Scattered(RKey, Vec<u64>),
}

/// Outcome of one batched write.
#[derive(Clone, Copy, Debug)]
pub struct BatchOutcome {
    /// When the last completion is visible to the caller.
    pub done: SimTime,
    /// Host CPU time the caller burned (staging copies, MMIOs) — the
    /// currency of Fig 18.
    pub cpu_busy: SimTime,
    /// Buffer-operations carried by the batch.
    pub ops: u64,
}

/// Issue one batched write of `bufs` over `conn` using `strategy`.
///
/// `staging` must be a registered local region of at least the total
/// payload size when `strategy == Sp` (the CPU gathers into it); the other
/// strategies ignore it.
pub fn batched_write(
    tb: &mut Testbed,
    now: SimTime,
    conn: ConnId,
    strategy: Strategy,
    bufs: &[Sge],
    staging: Option<MrId>,
    dst: &RemoteDst,
) -> BatchOutcome {
    assert!(!bufs.is_empty(), "empty batch");
    let total: u64 = bufs.iter().map(|s| s.len).sum();
    let client = tb.client_of(conn);
    match strategy {
        Strategy::Sp => {
            let staging = staging.expect("SP needs a staging region");
            let (rkey, offset) = match dst {
                RemoteDst::Contiguous(r, o) => (*r, *o),
                RemoteDst::Scattered(..) => panic!("SP requires a contiguous destination"),
            };
            // CPU gathers every buffer into the staging region: real bytes
            // move now, and the client is busy for the copy duration.
            let mut cursor = 0u64;
            let mut copy_cost = SimTime::ZERO;
            for sge in bufs {
                tb.machine_mut(client.machine)
                    .mem
                    .copy_within(sge.mr, sge.offset, staging, cursor, sge.len);
                cursor += sge.len;
                copy_cost += tb.cfg.host.memcpy_cost(sge.len as usize) + tb.cfg.host.l1_touch;
            }
            let post_at = now + copy_cost;
            let wr = WorkRequest::write(0, Sge::new(staging, 0, total), rkey, offset);
            let cqe = tb.post_one(post_at, conn, wr);
            debug_assert_eq!(cqe.status, CqeStatus::Success);
            BatchOutcome {
                done: cqe.at,
                cpu_busy: copy_cost + tb.cfg.rnic.mmio_cost,
                ops: bufs.len() as u64,
            }
        }
        Strategy::Doorbell => {
            let offsets: Vec<(RKey, u64)> = match dst {
                RemoteDst::Contiguous(r, o) => {
                    let mut off = *o;
                    bufs.iter()
                        .map(|s| {
                            let here = (*r, off);
                            off += s.len;
                            here
                        })
                        .collect()
                }
                RemoteDst::Scattered(r, offs) => {
                    assert_eq!(offs.len(), bufs.len(), "one offset per buffer");
                    offs.iter().map(|&o| (*r, o)).collect()
                }
            };
            // N WRs, one doorbell: only the last is signaled (selective
            // signaling, as the paper's benchmarks do).
            let wrs: Vec<WorkRequest> = bufs
                .iter()
                .zip(&offsets)
                .enumerate()
                .map(|(i, (sge, &(rkey, off)))| WorkRequest {
                    wr_id: WrId(i as u64),
                    kind: VerbKind::Write,
                    sgl: (*sge).into(),
                    remote: Some((rkey, off)),
                    signaled: i == bufs.len() - 1,
                })
                .collect();
            let done = tb.post_scratch(now, conn, &wrs).last().expect("last WR is signaled").at;
            // CPU cost: one MMIO plus queuing N WQEs into the send queue.
            let cpu = tb.cfg.rnic.mmio_cost + tb.cfg.host.l1_touch * bufs.len() as u64;
            BatchOutcome { done, cpu_busy: cpu, ops: bufs.len() as u64 }
        }
        Strategy::Sgl => {
            let (rkey, offset) = match dst {
                RemoteDst::Contiguous(r, o) => (*r, *o),
                RemoteDst::Scattered(..) => {
                    panic!("SGL coalesces to one remote address (§III-A)")
                }
            };
            let wr = WorkRequest {
                wr_id: WrId(0),
                kind: VerbKind::Write,
                sgl: bufs.into(),
                remote: Some((rkey, offset)),
                signaled: true,
            };
            let cqe = tb.post_one(now, conn, wr);
            debug_assert_eq!(cqe.status, CqeStatus::Success);
            let cpu = tb.cfg.rnic.mmio_cost + tb.cfg.host.l1_touch * bufs.len() as u64;
            BatchOutcome { done: cqe.at, cpu_busy: cpu, ops: bufs.len() as u64 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, Endpoint};

    fn setup(payload: u64, batch: usize) -> (Testbed, Vec<Sge>, MrId, MrId, ConnId) {
        let mut tb = Testbed::new(ClusterConfig::two_machines());
        let src = tb.register(0, 1, 1 << 20);
        let staging = tb.register(0, 1, 1 << 20);
        let dst = tb.register(1, 1, 1 << 20);
        let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
        // Scatter the source buffers a page apart so they're genuinely
        // non-contiguous.
        let bufs: Vec<Sge> = (0..batch).map(|i| Sge::new(src, i as u64 * 4096, payload)).collect();
        (tb, bufs, staging, dst, conn)
    }

    fn fill_sources(tb: &mut Testbed, bufs: &[Sge]) {
        for (i, sge) in bufs.iter().enumerate() {
            let byte = b'A' + (i as u8 % 26);
            let data = vec![byte; sge.len as usize];
            tb.machine_mut(0).mem.write(sge.mr, sge.offset, &data);
        }
    }

    fn check_contiguous(tb: &Testbed, dst: MrId, bufs: &[Sge]) {
        let mut off = 0u64;
        for (i, sge) in bufs.iter().enumerate() {
            let byte = b'A' + (i as u8 % 26);
            assert_eq!(
                tb.machine(1).mem.read(dst, off, sge.len),
                vec![byte; sge.len as usize],
                "buffer {i} corrupted"
            );
            off += sge.len;
        }
    }

    #[test]
    fn all_strategies_deliver_identical_bytes() {
        for strategy in Strategy::ALL {
            let (mut tb, bufs, staging, dst, conn) = setup(32, 4);
            fill_sources(&mut tb, &bufs);
            let out = batched_write(
                &mut tb,
                SimTime::ZERO,
                conn,
                strategy,
                &bufs,
                Some(staging),
                &RemoteDst::Contiguous(RKey(dst.0 as u64), 0),
            );
            assert_eq!(out.ops, 4);
            check_contiguous(&tb, dst, &bufs);
        }
    }

    #[test]
    fn doorbell_scattered_destinations() {
        let (mut tb, bufs, _staging, dst, conn) = setup(16, 3);
        fill_sources(&mut tb, &bufs);
        let offsets = vec![100, 5000, 9000];
        batched_write(
            &mut tb,
            SimTime::ZERO,
            conn,
            Strategy::Doorbell,
            &bufs,
            None,
            &RemoteDst::Scattered(RKey(dst.0 as u64), offsets.clone()),
        );
        for (i, &off) in offsets.iter().enumerate() {
            let byte = b'A' + i as u8;
            assert_eq!(tb.machine(1).mem.read(dst, off, 16), vec![byte; 16]);
        }
    }

    #[test]
    fn sp_burns_more_cpu_than_sgl() {
        let (mut tb, bufs, staging, dst, conn) = setup(256, 16);
        let dst_c = RemoteDst::Contiguous(RKey(dst.0 as u64), 0);
        let sp =
            batched_write(&mut tb, SimTime::ZERO, conn, Strategy::Sp, &bufs, Some(staging), &dst_c);
        let (mut tb2, bufs2, _s, dst2, conn2) = setup(256, 16);
        let dst_c2 = RemoteDst::Contiguous(RKey(dst2.0 as u64), 0);
        let sgl =
            batched_write(&mut tb2, SimTime::ZERO, conn2, Strategy::Sgl, &bufs2, None, &dst_c2);
        assert!(sp.cpu_busy > sgl.cpu_busy * 2, "sp {:?} sgl {:?}", sp.cpu_busy, sgl.cpu_busy);
    }

    #[test]
    fn batching_beats_singles_for_small_payloads() {
        // One batch-16 SP write of 32 B buffers finishes far sooner than
        // 16 serialized single writes.
        let (mut tb, bufs, staging, dst, conn) = setup(32, 16);
        let out = batched_write(
            &mut tb,
            SimTime::ZERO,
            conn,
            Strategy::Sp,
            &bufs,
            Some(staging),
            &RemoteDst::Contiguous(RKey(dst.0 as u64), 0),
        );
        let (mut tb2, bufs2, _s, dst2, conn2) = setup(32, 16);
        let mut t = SimTime::ZERO;
        for (i, sge) in bufs2.iter().enumerate() {
            let wr = WorkRequest::write(i as u64, *sge, RKey(dst2.0 as u64), i as u64 * 32);
            t = tb2.post_one(t, conn2, wr).at;
        }
        assert!(out.done * 4 < t, "batched {:?} vs singles {t:?}", out.done);
    }

    #[test]
    fn strategy_ordering_matches_paper_at_32b_batch16() {
        // Fig 4: SP > SGL > Doorbell in completion speed for small
        // payloads (single client, closed loop).
        let mut done = Vec::new();
        for strategy in Strategy::ALL {
            let (mut tb, bufs, staging, dst, conn) = setup(32, 16);
            let dst_c = RemoteDst::Contiguous(RKey(dst.0 as u64), 0);
            // Warm the MTT/QPC caches, then measure a steady-state batch.
            let warm =
                batched_write(&mut tb, SimTime::ZERO, conn, strategy, &bufs, Some(staging), &dst_c);
            let out =
                batched_write(&mut tb, warm.done, conn, strategy, &bufs, Some(staging), &dst_c);
            done.push((strategy, out.done - warm.done));
        }
        let sp = done[0].1;
        let doorbell = done[1].1;
        let sgl = done[2].1;
        assert!(sp < sgl, "SP {sp} must beat SGL {sgl}");
        assert!(sgl < doorbell, "SGL {sgl} must beat Doorbell {doorbell}");
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn sp_rejects_scattered_destination() {
        let (mut tb, bufs, staging, dst, conn) = setup(8, 2);
        batched_write(
            &mut tb,
            SimTime::ZERO,
            conn,
            Strategy::Sp,
            &bufs,
            Some(staging),
            &RemoteDst::Scattered(RKey(dst.0 as u64), vec![0, 8]),
        );
    }
}
