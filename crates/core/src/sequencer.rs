//! Sequencers: monotonically increasing tickets from a shared counter.
//!
//! §III-E's second atomic case study. The remote sequencer is one RDMA
//! fetch-and-add on an 8-byte counter — no remote CPU, naturally ordered
//! by the NIC's atomic unit (≈2.2–2.5 MOPS ceiling). The RPC sequencer
//! pays a full two-sided round trip plus server CPU per ticket.

use cluster::{ConnId, Testbed};
use rnicsim::{CqeStatus, RKey, Sge, VerbKind, WorkRequest, WrId};
use simcore::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// A ticket from a sequencer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// The sequence value handed out (the counter's pre-increment value).
    pub value: u64,
    /// When the caller observed it.
    pub at: SimTime,
}

/// Remote sequencer: FAA on a counter word in remote memory.
#[derive(Clone, Copy, Debug)]
pub struct RemoteSequencer {
    /// Remote region holding the counter.
    pub rkey: RKey,
    /// Byte offset of the 8-byte counter.
    pub offset: u64,
}

impl RemoteSequencer {
    /// Draw the next ticket (increment by 1).
    pub fn next(&self, tb: &mut Testbed, conn: ConnId, now: SimTime, scratch: Sge) -> Ticket {
        self.next_n(tb, conn, now, scratch, 1)
    }

    /// Draw a ticket advancing the counter by `n` — this is how the
    /// distributed log reserves `n` bytes of global log space in one verb.
    pub fn next_n(
        &self,
        tb: &mut Testbed,
        conn: ConnId,
        now: SimTime,
        scratch: Sge,
        n: u64,
    ) -> Ticket {
        let wr = WorkRequest {
            wr_id: WrId(0),
            kind: VerbKind::FetchAdd { delta: n },
            sgl: scratch.into(),
            remote: Some((self.rkey, self.offset)),
            signaled: true,
        };
        let cqe = tb.post_one(now, conn, wr);
        assert_eq!(cqe.status, CqeStatus::Success, "sequencer word must be valid");
        Ticket { value: cqe.old_value, at: cqe.at }
    }
}

/// RPC (two-sided) sequencer baseline: the counter lives behind a server
/// handler.
#[derive(Clone)]
pub struct RpcSequencer {
    counter: Rc<RefCell<u64>>,
    /// Server handler cost per ticket.
    pub handler_cost: SimTime,
}

impl Default for RpcSequencer {
    fn default() -> Self {
        Self::new()
    }
}

impl RpcSequencer {
    /// Counter starting at zero.
    pub fn new() -> Self {
        RpcSequencer { counter: Rc::new(RefCell::new(0)), handler_cost: SimTime::from_ns(60) }
    }

    /// Draw the next ticket over RPC.
    pub fn next(&self, tb: &mut Testbed, conn: ConnId, now: SimTime) -> Ticket {
        let reply = tb.rpc_call(now, conn, 16, 16, self.handler_cost);
        let mut c = self.counter.borrow_mut();
        let value = *c;
        *c += 1;
        Ticket { value, at: reply }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, Endpoint};
    use rnicsim::MrId;

    fn setup() -> (Testbed, ConnId, MrId, MrId) {
        let mut tb = Testbed::new(ClusterConfig::two_machines());
        let scratch = tb.register(0, 1, 4096);
        let counter = tb.register(1, 1, 4096);
        let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
        (tb, conn, scratch, counter)
    }

    #[test]
    fn tickets_are_dense_and_monotonic() {
        let (mut tb, conn, scratch, counter) = setup();
        let seq = RemoteSequencer { rkey: RKey(counter.0 as u64), offset: 0 };
        let mut t = SimTime::ZERO;
        for expect in 0..10u64 {
            let ticket = seq.next(&mut tb, conn, t, Sge::new(scratch, 0, 8));
            assert_eq!(ticket.value, expect);
            assert!(ticket.at > t);
            t = ticket.at;
        }
        assert_eq!(tb.machine(1).mem.load_u64(counter, 0), 10);
    }

    #[test]
    fn next_n_reserves_ranges() {
        let (mut tb, conn, scratch, counter) = setup();
        let seq = RemoteSequencer { rkey: RKey(counter.0 as u64), offset: 128 };
        let a = seq.next_n(&mut tb, conn, SimTime::ZERO, Sge::new(scratch, 0, 8), 100);
        let b = seq.next_n(&mut tb, conn, a.at, Sge::new(scratch, 0, 8), 50);
        assert_eq!(a.value, 0);
        assert_eq!(b.value, 100);
        assert_eq!(tb.machine(1).mem.load_u64(counter, 128), 150);
    }

    #[test]
    fn rpc_sequencer_counts_but_costs_more() {
        let (mut tb, conn, scratch, counter) = setup();
        let remote = RemoteSequencer { rkey: RKey(counter.0 as u64), offset: 0 };
        // Warm the one-sided path.
        let w = remote.next(&mut tb, conn, SimTime::ZERO, Sge::new(scratch, 0, 8));
        let r1 = remote.next(&mut tb, conn, w.at, Sge::new(scratch, 0, 8));
        let remote_cost = r1.at - w.at;

        let rpc = RpcSequencer::new();
        let t0 = r1.at;
        let p1 = rpc.next(&mut tb, conn, t0);
        assert_eq!(p1.value, 0);
        let p2 = rpc.next(&mut tb, conn, p1.at);
        assert_eq!(p2.value, 1);
        let rpc_cost = p2.at - p1.at;
        assert!(rpc_cost > remote_cost, "rpc {rpc_cost} vs remote {remote_cost}");
    }
}
