//! Remote spinlocks over RDMA atomics, plus the RPC-based baseline.
//!
//! §III-E: a spinlock is one 8-byte word in remote memory; acquire is
//! `CAS(0 → 1)`, release is an RDMA Write of 0 (one-sided, no remote CPU).
//! Under contention the plain version hammers the remote atomic unit with
//! failing CASes; [`Backoff`] doubles a waiting delay after each failed
//! attempt (Anderson-style exponential backoff), which trades a little
//! uncontended latency for far better behaviour at high thread counts —
//! the solid-point curves of Fig 10(a).

use cluster::{ConnId, Testbed};
use rnicsim::{CqeStatus, RKey, Sge, VerbKind, WorkRequest, WrId};
use simcore::{SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Exponential backoff policy for retrying a failed CAS.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// First retry delay.
    pub base: SimTime,
    /// Delay cap.
    pub max: SimTime,
}

impl Default for Backoff {
    fn default() -> Self {
        // Critical sections guarded by remote locks are a few microseconds
        // (CAS RTT + payload write), so cap the backoff in the same range:
        // a 10x larger cap makes waiters sleep through whole lock tenures
        // and collapses throughput under moderate contention.
        Backoff { base: SimTime::from_ns(300), max: SimTime::from_us(6) }
    }
}

impl Backoff {
    /// Delay before retry number `attempt` (0-based), with up to 25 %
    /// deterministic jitter drawn from `rng` to avoid lock-step retries.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimTime {
        let exp = attempt.min(16);
        let raw = self.base * (1u64 << exp);
        let capped = raw.min(self.max);
        let jitter = capped / 4;
        if jitter == SimTime::ZERO {
            capped
        } else {
            capped + SimTime::from_ps(rng.gen_range(jitter.as_ps()))
        }
    }
}

/// Result of a lock acquisition.
#[derive(Clone, Copy, Debug)]
pub struct Acquired {
    /// When the lock was observed held by us (CQE of the winning CAS).
    pub at: SimTime,
    /// CAS attempts spent (1 = uncontended).
    pub attempts: u32,
}

/// A spinlock word in remote memory driven by RDMA CAS.
#[derive(Clone, Copy, Debug)]
pub struct RemoteSpinlock {
    /// Remote region holding the lock word.
    pub rkey: RKey,
    /// Byte offset of the 8-byte lock word.
    pub offset: u64,
    /// Retry policy; `None` spins immediately on failure.
    pub backoff: Option<Backoff>,
}

impl RemoteSpinlock {
    /// A plain (no-backoff) lock.
    pub fn plain(rkey: RKey, offset: u64) -> Self {
        RemoteSpinlock { rkey, offset, backoff: None }
    }

    /// A lock with default exponential backoff.
    pub fn with_backoff(rkey: RKey, offset: u64) -> Self {
        RemoteSpinlock { rkey, offset, backoff: Some(Backoff::default()) }
    }

    /// Acquire: CAS(0→1) until it succeeds. `scratch` is a local 8-byte
    /// buffer for the returned old value; `rng` feeds backoff jitter.
    pub fn lock(
        &self,
        tb: &mut Testbed,
        conn: ConnId,
        now: SimTime,
        scratch: Sge,
        rng: &mut SimRng,
    ) -> Acquired {
        let mut t = now;
        let mut attempts = 0u32;
        loop {
            let wr = WorkRequest {
                wr_id: WrId(attempts as u64),
                kind: VerbKind::CompareSwap { expected: 0, desired: 1 },
                sgl: scratch.into(),
                remote: Some((self.rkey, self.offset)),
                signaled: true,
            };
            let cqe = tb.post_one(t, conn, wr);
            assert_eq!(cqe.status, CqeStatus::Success, "lock word must be valid");
            attempts += 1;
            if cqe.old_value == 0 {
                return Acquired { at: cqe.at, attempts };
            }
            t = match self.backoff {
                Some(b) => cqe.at + b.delay(attempts - 1, rng),
                None => cqe.at,
            };
        }
    }

    /// Release: one-sided write of 0 from `zero_scratch` (a local 8-byte
    /// buffer that must contain zeros). Returns the CQE time; the caller
    /// may treat the release as asynchronous.
    pub fn unlock(
        &self,
        tb: &mut Testbed,
        conn: ConnId,
        now: SimTime,
        zero_scratch: Sge,
    ) -> SimTime {
        let wr = WorkRequest {
            wr_id: WrId(u64::MAX),
            kind: VerbKind::Write,
            sgl: zero_scratch.into(),
            remote: Some((self.rkey, self.offset)),
            signaled: true,
        };
        let cqe = tb.post_one(now, conn, wr);
        assert_eq!(cqe.status, CqeStatus::Success);
        cqe.at
    }
}

/// Server-side state of the RPC (two-sided) lock baseline: the lock lives
/// in server DRAM and every acquire/release interrupts the server CPU.
#[derive(Debug, Default)]
pub struct RpcLockState {
    held: bool,
    /// Completed acquire+release cycles, for sanity checks.
    pub cycles: u64,
}

/// Client handle to an RPC lock (shared state, single-threaded engine).
#[derive(Clone)]
pub struct RpcLock {
    state: Rc<RefCell<RpcLockState>>,
    /// Server handler cost per request (check-and-set under a local lock).
    pub handler_cost: SimTime,
}

impl Default for RpcLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RpcLock {
    /// Fresh unlocked state.
    pub fn new() -> Self {
        RpcLock {
            state: Rc::new(RefCell::new(RpcLockState::default())),
            handler_cost: SimTime::from_ns(80),
        }
    }

    /// One acquire attempt over RPC; returns `(granted, reply_time)`.
    pub fn try_lock(&self, tb: &mut Testbed, conn: ConnId, now: SimTime) -> (bool, SimTime) {
        let reply = tb.rpc_call(now, conn, 24, 8, self.handler_cost);
        let mut st = self.state.borrow_mut();
        if st.held {
            (false, reply)
        } else {
            st.held = true;
            (true, reply)
        }
    }

    /// Retry until granted.
    pub fn lock(&self, tb: &mut Testbed, conn: ConnId, now: SimTime) -> Acquired {
        let mut t = now;
        let mut attempts = 0;
        loop {
            let (ok, reply) = self.try_lock(tb, conn, t);
            attempts += 1;
            if ok {
                return Acquired { at: reply, attempts };
            }
            t = reply;
        }
    }

    /// Release over RPC.
    pub fn unlock(&self, tb: &mut Testbed, conn: ConnId, now: SimTime) -> SimTime {
        let reply = tb.rpc_call(now, conn, 24, 8, self.handler_cost);
        let mut st = self.state.borrow_mut();
        assert!(st.held, "unlocking a free RPC lock");
        st.held = false;
        st.cycles += 1;
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, Endpoint};
    use rnicsim::MrId;

    fn setup() -> (Testbed, ConnId, MrId, MrId) {
        let mut tb = Testbed::new(ClusterConfig::two_machines());
        let scratch = tb.register(0, 1, 4096);
        let lock_mr = tb.register(1, 1, 4096);
        let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
        (tb, conn, scratch, lock_mr)
    }

    #[test]
    fn uncontended_lock_takes_one_cas() {
        let (mut tb, conn, scratch, lock_mr) = setup();
        let lock = RemoteSpinlock::plain(RKey(lock_mr.0 as u64), 0);
        let mut rng = SimRng::new(1);
        let a = lock.lock(&mut tb, conn, SimTime::ZERO, Sge::new(scratch, 0, 8), &mut rng);
        assert_eq!(a.attempts, 1);
        assert_eq!(tb.machine(1).mem.load_u64(lock_mr, 0), 1);
        let rel = lock.unlock(&mut tb, conn, a.at, Sge::new(scratch, 8, 8));
        assert!(rel > a.at);
        assert_eq!(tb.machine(1).mem.load_u64(lock_mr, 0), 0);
    }

    #[test]
    fn contended_lock_retries_until_released() {
        let (mut tb, conn, scratch, lock_mr) = setup();
        // Pre-hold the lock, then release it "in the future" by writing 0
        // directly; the client's retries before that instant must fail.
        tb.machine_mut(1).mem.store_u64(lock_mr, 0, 1);
        let lock = RemoteSpinlock::plain(RKey(lock_mr.0 as u64), 0);
        let mut rng = SimRng::new(2);
        // Simulate the holder releasing after 20 us by spawning a parallel
        // timeline: easiest is to release now via direct store after
        // checking retries happen. First, bound the attempts with backoff.
        let lock_b = RemoteSpinlock::with_backoff(RKey(lock_mr.0 as u64), 0);
        // Release immediately via direct memory poke after 3 failed tries
        // is hard to express inline, so just verify failure path: hold and
        // try once.
        let wr = WorkRequest {
            wr_id: WrId(0),
            kind: VerbKind::CompareSwap { expected: 0, desired: 1 },
            sgl: Sge::new(scratch, 0, 8).into(),
            remote: Some((RKey(lock_mr.0 as u64), 0)),
            signaled: true,
        };
        let cqe = tb.post_one(SimTime::ZERO, conn, wr);
        assert_eq!(cqe.old_value, 1, "CAS must observe the held lock");
        assert_eq!(tb.machine(1).mem.load_u64(lock_mr, 0), 1, "no swap on mismatch");
        // Now release and the backoff lock must get it on its next try.
        tb.machine_mut(1).mem.store_u64(lock_mr, 0, 0);
        let a = lock_b.lock(&mut tb, conn, cqe.at, Sge::new(scratch, 0, 8), &mut rng);
        assert_eq!(a.attempts, 1);
        let _ = lock;
    }

    #[test]
    fn backoff_delays_grow_and_cap() {
        let b = Backoff { base: SimTime::from_ns(100), max: SimTime::from_us(2) };
        let mut rng = SimRng::new(3);
        let d0 = b.delay(0, &mut rng);
        let d3 = b.delay(3, &mut rng);
        let d20 = b.delay(20, &mut rng);
        assert!(d0 >= SimTime::from_ns(100) && d0 <= SimTime::from_ns(125));
        assert!(d3 >= SimTime::from_ns(800) && d3 <= SimTime::from_ns(1000));
        assert!(d20 <= SimTime::from_us(2) + SimTime::from_ns(500));
    }

    #[test]
    fn rpc_lock_grants_and_blocks() {
        let (mut tb, conn, _scratch, _lock_mr) = setup();
        let lock = RpcLock::new();
        let (ok, t1) = lock.try_lock(&mut tb, conn, SimTime::ZERO);
        assert!(ok);
        let (ok2, t2) = lock.try_lock(&mut tb, conn, t1);
        assert!(!ok2, "second acquire must be refused");
        let t3 = lock.unlock(&mut tb, conn, t2);
        let (ok3, _) = lock.try_lock(&mut tb, conn, t3);
        assert!(ok3, "free after unlock");
        assert_eq!(lock.state.borrow().cycles, 1);
    }

    #[test]
    fn remote_lock_cycle_beats_rpc_cycle() {
        // §III-E: the one-sided lock out-performs the RPC lock.
        let (mut tb, conn, scratch, lock_mr) = setup();
        let lock = RemoteSpinlock::plain(RKey(lock_mr.0 as u64), 0);
        let mut rng = SimRng::new(4);
        // Warm.
        let w = lock.lock(&mut tb, conn, SimTime::ZERO, Sge::new(scratch, 0, 8), &mut rng);
        let wu = lock.unlock(&mut tb, conn, w.at, Sge::new(scratch, 8, 8));
        let a = lock.lock(&mut tb, conn, wu, Sge::new(scratch, 0, 8), &mut rng);
        let rel = lock.unlock(&mut tb, conn, a.at, Sge::new(scratch, 8, 8));
        let one_sided = rel - wu;
        let rpc = RpcLock::new();
        let t0 = rel;
        let g = rpc.lock(&mut tb, conn, t0);
        let t1 = rpc.unlock(&mut tb, conn, g.at);
        let rpc_cycle = t1 - t0;
        assert!(rpc_cycle > one_sided, "rpc {rpc_cycle} must exceed one-sided {one_sided}");
    }
}
