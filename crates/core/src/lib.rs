//! # remem — the paper's remote-memory optimization guidelines as a library
//!
//! "Thinking More about RDMA Memory Semantics" (CLUSTER 2021) distils five
//! local-memory optimization families that carry over to one-sided RDMA.
//! This crate is the reusable form of those guidelines:
//!
//! * [`vectorio`] — the three batching strategies of §III-A (`SP`,
//!   `Doorbell`, `SGL`) behind one entry point, with CPU-cost accounting.
//! * [`consolidation`] — the §III-C remote burst buffer: absorb θ small
//!   writes per aligned block, flush once (plus lease timeouts and a
//!   hot-range hint-style API).
//! * [`numa`] — §III-D socket-matched connection meshes and the proxy
//!   socket router that avoids both QP explosion and QPI crossings.
//! * [`lock`] — §III-E remote spinlocks over RDMA CAS, with exponential
//!   backoff, plus the two-sided RPC baseline.
//! * [`sequencer`] — remote fetch-and-add sequencers (and RPC baseline);
//!   `next_n` doubles as the distributed log's space reservation.
//! * [`versioned`] — the multi-version remote entry used for cold keys in
//!   the disaggregated hashtable.
//! * [`ring`] — a bounded one-sided MPSC ring buffer, generalizing the
//!   log's reserve-then-write idiom into a reusable queue.
//!
//! Everything runs against the simulated [`cluster::Testbed`]; swap in a
//! real ibverbs transport by reimplementing that layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consolidation;
pub mod lock;
pub mod numa;
pub mod ring;
pub mod sequencer;
pub mod vectorio;
pub mod versioned;

pub use consolidation::{ConsolidationBuffer, ConsolidationStats};
pub use lock::{Acquired, Backoff, RemoteSpinlock, RpcLock};
pub use numa::{NumaMode, Route, SocketMesh, DEFAULT_IPC_HOP};
pub use ring::{PushError, RemoteRing, RingConsumer, RingProducer};
pub use sequencer::{RemoteSequencer, RpcSequencer, Ticket};
pub use vectorio::{batched_write, BatchOutcome, RemoteDst, Strategy};
pub use versioned::{VersionedEntry, VersionedRead, VersionedWrite};
