//! IO consolidation: the remote burst buffer of §III-C.
//!
//! Small writes aimed at the same aligned remote block are absorbed into a
//! local shadow copy of that block and flushed as **one** block-sized RDMA
//! Write when either
//!
//! 1. θ writes have accumulated for the block, or
//! 2. the block's lease times out (a write has been sitting unflushed for
//!    too long).
//!
//! θ small round trips collapse into one; Fig 8 shows 7.49× for 32-byte
//! random writes at θ = 16 over 1 KB blocks. The price is write
//! amplification (a whole block travels even if θ·s < S bytes changed) and
//! a consistency window: remote memory lags local intent until the flush.
//! The paper aims this at skewed workloads via a *hint* interface — hot
//! ranges consolidate, cold writes go straight through.

use cluster::{ConnId, Testbed};
use rnicsim::{MrId, RKey, Sge, WorkRequest};
use simcore::SimTime;
use std::collections::HashMap;

/// Statistics of a consolidation buffer's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConsolidationStats {
    /// Small writes absorbed.
    pub absorbed: u64,
    /// Block flushes issued (θ reached).
    pub threshold_flushes: u64,
    /// Block flushes issued by lease expiry.
    pub timeout_flushes: u64,
}

struct PendingBlock {
    /// Writes absorbed since the last flush.
    count: usize,
    /// When the oldest unflushed write arrived.
    oldest: SimTime,
}

/// A write-combining burst buffer in front of one remote region.
///
/// The local `shadow` region mirrors the remote one; absorbed writes are
/// applied to the shadow immediately (CPU memcpy cost) and the flush sends
/// the whole block from the shadow.
pub struct ConsolidationBuffer {
    conn: ConnId,
    /// Local shadow region (same size as the remote target).
    shadow: MrId,
    /// Remote target region.
    remote: RKey,
    /// Aligned block size S.
    block_bytes: u64,
    /// Flush threshold θ.
    theta: usize,
    /// Lease: flush a block that has waited this long.
    lease: SimTime,
    pending: HashMap<u64, PendingBlock>,
    stats: ConsolidationStats,
}

impl ConsolidationBuffer {
    /// Create a buffer consolidating writes to `remote` over `conn`.
    pub fn new(
        conn: ConnId,
        shadow: MrId,
        remote: RKey,
        block_bytes: u64,
        theta: usize,
        lease: SimTime,
    ) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        assert!(theta >= 1, "theta must be at least 1");
        ConsolidationBuffer {
            conn,
            shadow,
            remote,
            block_bytes,
            theta,
            lease,
            pending: HashMap::new(),
            stats: ConsolidationStats::default(),
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> ConsolidationStats {
        self.stats
    }

    /// Blocks currently holding unflushed writes.
    pub fn dirty_blocks(&self) -> usize {
        self.pending.len()
    }

    /// Absorb a small write of `data` at `offset` of the remote region.
    /// Returns the flush completion time if this write tripped θ, else
    /// `None` (the write cost only a local copy). The returned time also
    /// reflects when the data is durable remotely.
    pub fn write(
        &mut self,
        tb: &mut Testbed,
        now: SimTime,
        offset: u64,
        data: &[u8],
    ) -> Option<SimTime> {
        let block = offset / self.block_bytes;
        assert_eq!(
            (offset + data.len() as u64 - 1) / self.block_bytes,
            block,
            "write must stay inside one aligned block"
        );
        // Apply to the shadow (CPU copy — cheap, local).
        let client = tb.client_of(self.conn);
        tb.machine_mut(client.machine).mem.write(self.shadow, offset, data);
        self.stats.absorbed += 1;

        let entry = self.pending.entry(block).or_insert(PendingBlock { count: 0, oldest: now });
        entry.count += 1;
        if entry.count >= self.theta {
            self.pending.remove(&block);
            self.stats.threshold_flushes += 1;
            Some(self.flush_block(tb, now, block))
        } else {
            None
        }
    }

    /// CPU cost of absorbing one write of `len` bytes (the local memcpy
    /// into the shadow) — callers add this to their busy time.
    pub fn absorb_cost(&self, tb: &Testbed, len: usize) -> SimTime {
        tb.cfg.host.memcpy_cost(len) + tb.cfg.host.l1_touch
    }

    /// Flush every block whose lease expired by `now`; returns flush
    /// completion times.
    pub fn poll_leases(&mut self, tb: &mut Testbed, now: SimTime) -> Vec<SimTime> {
        let lease = self.lease;
        let mut expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| now.saturating_sub(p.oldest) >= lease)
            .map(|(&b, _)| b)
            .collect();
        // HashMap iteration order is hasher-seeded; flushes post verbs
        // that advance NIC state, so flush in sorted block order to keep
        // the simulation deterministic run to run.
        expired.sort_unstable();
        let mut done = Vec::with_capacity(expired.len());
        for block in expired {
            self.pending.remove(&block);
            self.stats.timeout_flushes += 1;
            done.push(self.flush_block(tb, now, block));
        }
        done
    }

    /// Force every dirty block out (shutdown / barrier).
    pub fn flush_all(&mut self, tb: &mut Testbed, now: SimTime) -> SimTime {
        let mut blocks: Vec<u64> = self.pending.keys().copied().collect();
        // Sorted for determinism — see poll_leases.
        blocks.sort_unstable();
        self.pending.clear();
        let mut last = now;
        for block in blocks {
            self.stats.timeout_flushes += 1;
            last = last.max(self.flush_block(tb, now, block));
        }
        last
    }

    fn flush_block(&mut self, tb: &mut Testbed, now: SimTime, block: u64) -> SimTime {
        let offset = block * self.block_bytes;
        let wr = WorkRequest::write(
            block,
            Sge::new(self.shadow, offset, self.block_bytes),
            self.remote,
            offset,
        );
        tb.post_one(now, self.conn, wr).at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, Endpoint};

    fn setup(theta: usize) -> (Testbed, ConsolidationBuffer) {
        let mut tb = Testbed::new(ClusterConfig::two_machines());
        let shadow = tb.register(0, 1, 1 << 20);
        let remote = tb.register(1, 1, 1 << 20);
        let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
        let buf = ConsolidationBuffer::new(
            conn,
            shadow,
            RKey(remote.0 as u64),
            1024,
            theta,
            SimTime::from_us(100),
        );
        (tb, buf)
    }

    #[test]
    fn theta_writes_trigger_one_flush() {
        let (mut tb, mut buf) = setup(4);
        let mut flushed = None;
        for i in 0..4u64 {
            flushed = buf.write(&mut tb, SimTime::from_ns(i * 10), i * 32, &[i as u8; 32]);
            if i < 3 {
                assert!(flushed.is_none(), "flush fired early at write {i}");
            }
        }
        assert!(flushed.is_some(), "4th write must flush");
        let s = buf.stats();
        assert_eq!(s.absorbed, 4);
        assert_eq!(s.threshold_flushes, 1);
        assert_eq!(s.timeout_flushes, 0);
    }

    #[test]
    fn flush_carries_all_absorbed_bytes() {
        let (mut tb, mut buf) = setup(2);
        buf.write(&mut tb, SimTime::ZERO, 0, b"first data here!");
        buf.write(&mut tb, SimTime::from_ns(50), 512, b"second write!!!!");
        // Remote region (MR 0 on machine 1) must now hold both spans.
        assert_eq!(tb.machine(1).mem.read(rnicsim::MrId(0), 0, 16), b"first data here!");
        assert_eq!(tb.machine(1).mem.read(rnicsim::MrId(0), 512, 16), b"second write!!!!");
    }

    #[test]
    fn distinct_blocks_count_separately() {
        let (mut tb, mut buf) = setup(3);
        // Two writes to block 0, two to block 5: neither reaches theta=3.
        buf.write(&mut tb, SimTime::ZERO, 0, &[1; 8]);
        buf.write(&mut tb, SimTime::ZERO, 64, &[2; 8]);
        buf.write(&mut tb, SimTime::ZERO, 5 * 1024, &[3; 8]);
        buf.write(&mut tb, SimTime::ZERO, 5 * 1024 + 64, &[4; 8]);
        assert_eq!(buf.dirty_blocks(), 2);
        assert_eq!(buf.stats().threshold_flushes, 0);
    }

    #[test]
    fn lease_expiry_flushes() {
        let (mut tb, mut buf) = setup(16);
        buf.write(&mut tb, SimTime::ZERO, 0, &[9; 32]);
        assert!(buf.poll_leases(&mut tb, SimTime::from_us(50)).is_empty());
        let done = buf.poll_leases(&mut tb, SimTime::from_us(100));
        assert_eq!(done.len(), 1);
        assert_eq!(buf.stats().timeout_flushes, 1);
        assert_eq!(buf.dirty_blocks(), 0);
        assert_eq!(tb.machine(1).mem.read(rnicsim::MrId(0), 0, 32), vec![9; 32]);
    }

    #[test]
    fn flush_all_drains_everything() {
        let (mut tb, mut buf) = setup(100);
        for b in 0..5u64 {
            buf.write(&mut tb, SimTime::ZERO, b * 1024, &[b as u8; 16]);
        }
        assert_eq!(buf.dirty_blocks(), 5);
        buf.flush_all(&mut tb, SimTime::from_us(1));
        assert_eq!(buf.dirty_blocks(), 0);
        for b in 0..5u64 {
            assert_eq!(tb.machine(1).mem.read(rnicsim::MrId(0), b * 1024, 16), vec![b as u8; 16]);
        }
    }

    #[test]
    #[should_panic(expected = "one aligned block")]
    fn straddling_writes_are_rejected() {
        let (mut tb, mut buf) = setup(4);
        buf.write(&mut tb, SimTime::ZERO, 1020, &[0; 16]);
    }

    #[test]
    fn consolidated_beats_native_for_32b_random_writes() {
        // The Fig 8 effect in miniature: 16 writes via theta=16
        // consolidation finish far sooner than 16 native round trips.
        let (mut tb, mut buf) = setup(16);
        let mut done = SimTime::ZERO;
        for i in 0..16u64 {
            if let Some(t) = buf.write(&mut tb, done, i * 32, &[i as u8; 32]) {
                done = t;
            } else {
                done += buf.absorb_cost(&tb, 32);
            }
        }
        // Native: 16 serialized small writes on a fresh testbed.
        let mut tb2 = Testbed::new(ClusterConfig::two_machines());
        let src = tb2.register(0, 1, 4096);
        let dst = tb2.register(1, 1, 4096);
        let conn = tb2.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
        let mut t = SimTime::ZERO;
        for i in 0..16u64 {
            let wr = WorkRequest::write(i, Sge::new(src, 0, 32), RKey(dst.0 as u64), i * 32);
            t = tb2.post_one(t, conn, wr).at;
        }
        assert!(done * 5 < t, "consolidated {done} vs native {t}");
    }
}
