//! A one-sided multi-producer ring buffer in remote memory.
//!
//! Generalizes the distributed log's reserve-then-write idiom (§IV-E)
//! into a bounded queue: producers on any machine reserve a slot with one
//! remote fetch-and-add and fill it with one RDMA Write — no consumer CPU
//! on the enqueue path. The consumer lives on the machine that owns the
//! ring memory and pops with plain local accesses, publishing its head
//! position in the ring header so producers can check capacity with an
//! occasional RDMA Read (credit refresh) instead of per-push round trips.
//!
//! Layout (`base` in the remote region):
//!
//! ```text
//! base + 0   tail counter (u64, FAA target)
//! base + 8   head position (u64, consumer-published)
//! base + 64  slot 0: [ seq u64 | len u32 | payload … ]   (slot_bytes)
//! base + 64 + slot_bytes: slot 1 …
//! ```
//!
//! A slot is valid when `seq == ticket + 1` (zero means never written),
//! which makes slot reuse across laps unambiguous.

use cluster::{ConnId, Testbed};
use rnicsim::{CqeStatus, MrId, RKey, Sge, VerbKind, WorkRequest, WrId};
use simcore::SimTime;

/// Header bytes before slot 0.
pub const RING_HEADER: u64 = 64;
/// Per-slot header: sequence (8) + length (4) + padding (4).
pub const SLOT_HEADER: u64 = 16;

/// A bounded MPSC queue in remote memory.
#[derive(Clone, Copy, Debug)]
pub struct RemoteRing {
    /// Region holding the ring.
    pub rkey: RKey,
    /// Offset of the ring header inside the region.
    pub base: u64,
    /// Slot count (capacity).
    pub slots: u64,
    /// Bytes per slot including the slot header.
    pub slot_bytes: u64,
}

/// Producer-side handle: caches the consumer's head for credit checks.
#[derive(Clone, Copy, Debug)]
pub struct RingProducer {
    /// The ring being produced into.
    pub ring: RemoteRing,
    cached_head: u64,
}

/// Why a push did not happen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The ring is full even after refreshing the head (consumer behind).
    Full,
    /// Payload exceeds `slot_bytes - SLOT_HEADER`.
    TooLarge,
}

impl RemoteRing {
    /// Total bytes the ring occupies in its region.
    pub fn footprint(&self) -> u64 {
        RING_HEADER + self.slots * self.slot_bytes
    }

    /// Maximum payload bytes per slot.
    pub fn max_payload(&self) -> u64 {
        self.slot_bytes - SLOT_HEADER
    }

    fn slot_offset(&self, ticket: u64) -> u64 {
        self.base + RING_HEADER + (ticket % self.slots) * self.slot_bytes
    }
}

impl RingProducer {
    /// A producer starting with zero credit knowledge.
    pub fn new(ring: RemoteRing) -> Self {
        RingProducer { ring, cached_head: 0 }
    }

    /// Push `payload`: reserve a ticket (FAA), verify capacity against the
    /// cached — refreshing over RDMA if needed — head, then write the
    /// sealed slot. Returns the ticket and the completion time.
    ///
    /// `staging` needs `slot_bytes` of scratch at `staging_off` plus 8
    /// bytes at `staging_off` for the FAA result (reused).
    pub fn push(
        &mut self,
        tb: &mut Testbed,
        conn: ConnId,
        now: SimTime,
        payload: &[u8],
        staging: MrId,
        staging_off: u64,
    ) -> Result<(u64, SimTime), PushError> {
        if payload.len() as u64 > self.ring.max_payload() {
            return Err(PushError::TooLarge);
        }
        // Reserve.
        let faa = WorkRequest {
            wr_id: WrId(0),
            kind: VerbKind::FetchAdd { delta: 1 },
            sgl: Sge::new(staging, staging_off, 8).into(),
            remote: Some((self.ring.rkey, self.ring.base)),
            signaled: true,
        };
        let cqe = tb.post_one(now, conn, faa);
        debug_assert_eq!(cqe.status, CqeStatus::Success);
        let ticket = cqe.old_value;
        let mut t = cqe.at;

        // Credit check: the ticket must be within `slots` of the head.
        if ticket >= self.cached_head + self.ring.slots {
            // Refresh the head with one RDMA Read.
            let rd = WorkRequest::read(
                1,
                Sge::new(staging, staging_off, 8),
                self.ring.rkey,
                self.ring.base + 8,
            );
            let c = tb.post_one(t, conn, rd);
            debug_assert_eq!(c.status, CqeStatus::Success);
            t = c.at;
            let me = tb.client_of(conn).machine;
            self.cached_head = tb.machine(me).mem.load_u64(staging, staging_off);
            if ticket >= self.cached_head + self.ring.slots {
                // Our reservation outran the consumer. A real implementation
                // would retry after backoff; we surface it.
                return Err(PushError::Full);
            }
        }

        // Seal: [seq = ticket + 1 | len | payload] in one write.
        let me = tb.client_of(conn).machine;
        let mut image = Vec::with_capacity(SLOT_HEADER as usize + payload.len());
        image.extend_from_slice(&(ticket + 1).to_le_bytes());
        image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        image.extend_from_slice(&[0u8; 4]);
        image.extend_from_slice(payload);
        tb.machine_mut(me).mem.write(staging, staging_off, &image);
        let build = tb.cfg.host.memcpy_cost(image.len());
        let wr = WorkRequest::write(
            ticket,
            Sge::new(staging, staging_off, image.len() as u64),
            self.ring.rkey,
            self.ring.slot_offset(ticket),
        );
        let c = tb.post_one(t + build, conn, wr);
        debug_assert_eq!(c.status, CqeStatus::Success);
        Ok((ticket, c.at))
    }
}

/// Consumer-side handle (runs on the machine owning the ring memory).
#[derive(Clone, Copy, Debug)]
pub struct RingConsumer {
    /// The ring being consumed.
    pub ring: RemoteRing,
    /// Region the ring lives in, as a local MR id.
    pub mr: MrId,
    head: u64,
}

impl RingConsumer {
    /// A consumer starting at the beginning of the stream.
    pub fn new(ring: RemoteRing, mr: MrId) -> Self {
        RingConsumer { ring, mr, head: 0 }
    }

    /// Sequence number of the next expected pop.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Pop the next sealed payload if its producer's write has landed.
    /// Returns the payload and the (local) time the pop finished.
    pub fn pop(
        &mut self,
        tb: &mut Testbed,
        machine: usize,
        now: SimTime,
    ) -> Option<(Vec<u8>, SimTime)> {
        let off = self.ring.slot_offset(self.head);
        let seq = tb.machine(machine).mem.load_u64(self.mr, off);
        if seq != self.head + 1 {
            return None; // not yet sealed (or an old lap)
        }
        // The length field sits in the low half of an 8-byte lane; a u64
        // load truncated to 32 bits reads it without a heap allocation.
        let len = tb.machine(machine).mem.load_u64(self.mr, off + 8) as u32 as u64;
        let mut payload = Vec::with_capacity(len as usize);
        tb.machine(machine).mem.read_into(self.mr, off + SLOT_HEADER, len, &mut payload);
        self.head += 1;
        // Publish the new head for producer credit refreshes.
        tb.machine_mut(machine).mem.store_u64(self.mr, self.ring.base + 8, self.head);
        let t = now + tb.cfg.host.memcpy_cost(len as usize) + tb.cfg.host.l1_touch * 2;
        Some((payload, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, Endpoint};

    fn setup(slots: u64) -> (Testbed, RemoteRing, MrId, MrId, ConnId, ConnId) {
        let mut tb = Testbed::new(ClusterConfig { machines: 3, ..Default::default() });
        let ring_mr = tb.register(2, 1, 1 << 16);
        let s0 = tb.register(0, 1, 4096);
        let _s1 = tb.register(1, 1, 4096);
        let c0 = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(2, 1));
        let c1 = tb.connect(Endpoint::affine(1, 1), Endpoint::affine(2, 1));
        let ring = RemoteRing { rkey: RKey(ring_mr.0 as u64), base: 0, slots, slot_bytes: 64 };
        (tb, ring, ring_mr, s0, c0, c1)
    }

    #[test]
    fn push_pop_round_trips_in_order() {
        let (mut tb, ring, mr, staging, conn, _) = setup(8);
        let mut producer = RingProducer::new(ring);
        let mut consumer = RingConsumer::new(ring, mr);
        let mut t = SimTime::ZERO;
        for i in 0..5u8 {
            let (ticket, done) =
                producer.push(&mut tb, conn, t, &[i; 20], staging, 0).expect("space");
            assert_eq!(ticket, i as u64);
            t = done;
        }
        for i in 0..5u8 {
            let (payload, _) = consumer.pop(&mut tb, 2, t).expect("sealed");
            assert_eq!(payload, vec![i; 20]);
        }
        assert!(consumer.pop(&mut tb, 2, t).is_none(), "ring drained");
    }

    #[test]
    fn wraps_across_laps() {
        let (mut tb, ring, mr, staging, conn, _) = setup(4);
        let mut producer = RingProducer::new(ring);
        let mut consumer = RingConsumer::new(ring, mr);
        let mut t = SimTime::ZERO;
        for round in 0..3u8 {
            for i in 0..4u8 {
                let v = round * 4 + i;
                let (_, done) =
                    producer.push(&mut tb, conn, t, &[v; 8], staging, 0).expect("space");
                t = done;
            }
            for i in 0..4u8 {
                let v = round * 4 + i;
                let (payload, _) = consumer.pop(&mut tb, 2, t).expect("sealed");
                assert_eq!(payload, vec![v; 8]);
            }
        }
    }

    #[test]
    fn full_ring_is_detected() {
        let (mut tb, ring, _mr, staging, conn, _) = setup(4);
        let mut producer = RingProducer::new(ring);
        let mut t = SimTime::ZERO;
        for i in 0..4u8 {
            let (_, done) = producer.push(&mut tb, conn, t, &[i; 8], staging, 0).expect("space");
            t = done;
        }
        // Fifth push: the consumer never moved, head refresh says full.
        assert_eq!(
            producer.push(&mut tb, conn, t, &[9; 8], staging, 0).unwrap_err(),
            PushError::Full
        );
    }

    #[test]
    fn consumer_progress_restores_credit() {
        let (mut tb, ring, mr, staging, conn, _) = setup(4);
        let mut producer = RingProducer::new(ring);
        let mut consumer = RingConsumer::new(ring, mr);
        let mut t = SimTime::ZERO;
        for i in 0..4u8 {
            let (_, done) = producer.push(&mut tb, conn, t, &[i; 8], staging, 0).expect("space");
            t = done;
        }
        consumer.pop(&mut tb, 2, t).expect("one");
        // Now a push succeeds again after refreshing the head.
        let (ticket, _) = producer.push(&mut tb, conn, t, &[9; 8], staging, 0).expect("space");
        assert_eq!(ticket, 4);
    }

    #[test]
    fn two_producers_interleave_without_loss() {
        let (mut tb, ring, mr, s0, c0, c1) = setup(16);
        // MR ids are per-machine: machine 1's staging is its first MR.
        let s1 = rnicsim::MrId(0);
        let mut p0 = RingProducer::new(ring);
        let mut p1 = RingProducer::new(ring);
        let mut consumer = RingConsumer::new(ring, mr);
        let mut t = SimTime::ZERO;
        for i in 0..6u8 {
            let (_, d0) = p0.push(&mut tb, c0, t, &[i; 8], s0, 0).expect("space");
            let (_, d1) = p1.push(&mut tb, c1, t, &[i + 100; 8], s1, 0).expect("space");
            t = d0.max(d1);
        }
        let mut seen = Vec::new();
        while let Some((payload, _)) = consumer.pop(&mut tb, 2, t) {
            seen.push(payload[0]);
        }
        assert_eq!(seen.len(), 12, "every push arrived exactly once");
        // Tickets are FAA-ordered, so the sequence alternates producers in
        // issue order.
        for i in 0..6u8 {
            assert!(seen.contains(&i) && seen.contains(&(i + 100)));
        }
    }

    #[test]
    fn oversized_payloads_rejected() {
        let (mut tb, ring, _mr, staging, conn, _) = setup(4);
        let mut producer = RingProducer::new(ring);
        assert_eq!(
            producer.push(&mut tb, conn, SimTime::ZERO, &[0; 64], staging, 0).unwrap_err(),
            PushError::TooLarge
        );
    }
}
