//! Property-style tests for the optimization library, driven by the
//! deterministic [`SimRng`] (fixed seeds; no external framework needed).

use cluster::{ClusterConfig, ConnId, Endpoint, Testbed};
use remem::{
    batched_write, Backoff, ConsolidationBuffer, NumaMode, RemoteDst, RemoteSequencer, SocketMesh,
    Strategy, VersionedEntry,
};
use rnicsim::{MrId, RKey, Sge};
use simcore::{SimRng, SimTime};

fn setup() -> (Testbed, MrId, MrId, MrId, ConnId) {
    let mut tb = Testbed::new(ClusterConfig::two_machines());
    let src = tb.register(0, 1, 1 << 18);
    let staging = tb.register(0, 1, 1 << 18);
    let dst = tb.register(1, 1, 1 << 18);
    let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
    (tb, src, staging, dst, conn)
}

/// Every strategy moves identical bytes for arbitrary batch shapes.
#[test]
fn strategies_agree_on_data() {
    let mut meta = SimRng::new(0x2101);
    for _ in 0..16 {
        let lens: Vec<u64> = (0..1 + meta.gen_range(11)).map(|_| 1 + meta.gen_range(127)).collect();
        let seed = meta.next_u64();
        let mut images = Vec::new();
        for strategy in Strategy::ALL {
            let (mut tb, src, staging, dst, conn) = setup();
            let mut rng = SimRng::new(seed);
            let mut bufs = Vec::new();
            for (i, &len) in lens.iter().enumerate() {
                let off = i as u64 * 512 + rng.gen_range(64);
                let fill: Vec<u8> = (0..len).map(|b| (b as u8) ^ (i as u8) ^ 0x5A).collect();
                tb.machine_mut(0).mem.write(src, off, &fill);
                bufs.push(Sge::new(src, off, len));
            }
            let total: u64 = lens.iter().sum();
            batched_write(
                &mut tb,
                SimTime::ZERO,
                conn,
                strategy,
                &bufs,
                Some(staging),
                &RemoteDst::Contiguous(RKey(dst.0 as u64), 1000),
            );
            images.push(tb.machine(1).mem.read(dst, 1000, total));
        }
        assert_eq!(&images[0], &images[1]);
        assert_eq!(&images[1], &images[2]);
    }
}

/// Consolidation: exactly one threshold flush per θ same-block writes, and
/// the remote block equals the shadow after any flush.
#[test]
fn consolidation_counts_flushes() {
    let mut rng = SimRng::new(0x2102);
    for _ in 0..32 {
        let theta = 1 + rng.gen_range(11) as usize;
        let writes = 1 + rng.gen_range(59) as usize;
        let (mut tb, _src, shadow, dst, conn) = setup();
        let mut buf = ConsolidationBuffer::new(
            conn,
            shadow,
            RKey(dst.0 as u64),
            1024,
            theta,
            SimTime::from_ms(100),
        );
        let mut t = SimTime::ZERO;
        for i in 0..writes {
            if let Some(done) = buf.write(&mut tb, t, (i as u64 % 16) * 32, &[i as u8; 32]) {
                t = done;
            } else {
                t += SimTime::from_ns(10);
            }
        }
        let stats = buf.stats();
        assert_eq!(stats.absorbed, writes as u64);
        assert_eq!(stats.threshold_flushes, (writes / theta) as u64);
        assert_eq!(buf.dirty_blocks(), usize::from(!writes.is_multiple_of(theta)));
    }
}

/// Sequencer tickets partition the number line: next_n ranges are
/// disjoint, contiguous, and ordered.
#[test]
fn sequencer_ranges_tile() {
    let mut rng = SimRng::new(0x2103);
    for _ in 0..24 {
        let sizes: Vec<u64> = (0..1 + rng.gen_range(39)).map(|_| 1 + rng.gen_range(4999)).collect();
        let (mut tb, src, _staging, dst, conn) = setup();
        let seq = RemoteSequencer { rkey: RKey(dst.0 as u64), offset: 0 };
        let mut t = SimTime::ZERO;
        let mut expect = 0u64;
        for &n in &sizes {
            let ticket = seq.next_n(&mut tb, conn, t, Sge::new(src, 0, 8), n);
            assert_eq!(ticket.value, expect);
            expect += n;
            t = ticket.at;
        }
        assert_eq!(tb.machine(1).mem.load_u64(MrId(0), 0), expect);
    }
}

/// Versioned entries: after any write sequence, a read returns the last
/// written value with the highest version.
#[test]
fn versioned_read_your_writes() {
    let mut rng = SimRng::new(0x2104);
    for _ in 0..24 {
        let values: Vec<[u8; 8]> =
            (0..1 + rng.gen_range(11)).map(|_| rng.next_u64().to_le_bytes()).collect();
        let slots = 2 + rng.gen_range(4);
        let (mut tb, _src, staging, dst, conn) = setup();
        let entry = VersionedEntry { rkey: RKey(dst.0 as u64), base: 4096, slots, value_len: 8 };
        let mut t = SimTime::ZERO;
        for v in &values {
            let w = entry.write(&mut tb, conn, t, v, staging, 0);
            t = w.at;
        }
        let r = entry.read(&mut tb, conn, t, staging, 0).expect("committed");
        assert_eq!(r.version, values.len() as u64);
        assert_eq!(&r.value, values.last().unwrap());
    }
}

/// Backoff delays are bounded by max + jitter and non-decreasing in
/// attempt (up to the cap).
#[test]
fn backoff_bounded() {
    let mut meta = SimRng::new(0x2105);
    for _ in 0..64 {
        let base_ns = 1 + meta.gen_range(9_999);
        let cap_us = 1 + meta.gen_range(99);
        let attempt = meta.gen_range(40) as u32;
        let b = Backoff { base: SimTime::from_ns(base_ns), max: SimTime::from_us(cap_us) };
        let mut rng = SimRng::new(meta.next_u64());
        let d = b.delay(attempt, &mut rng);
        let cap = SimTime::from_us(cap_us);
        assert!(d <= cap + cap / 4, "delay {} over cap {}", d, cap);
        assert!(d >= b.base.min(cap));
    }
}

/// The proxy mesh routes every (socket, machine, socket) triple to a
/// connection whose server is on the requested machine, and matched
/// requests never pay hand-off costs.
#[test]
fn mesh_routing_total() {
    for machines in 2..6 {
        for mode in [NumaMode::DirectCross, NumaMode::Proxy, NumaMode::AllToAll] {
            let mut tb = Testbed::new(ClusterConfig { machines, ..Default::default() });
            let mesh = SocketMesh::build(&mut tb, 0, mode);
            for rm in 1..machines {
                for fs in 0..2 {
                    for rs in 0..2 {
                        let route = mesh.route(fs, rm, rs);
                        let server = tb.server_of(route.conn);
                        assert_eq!(server.machine, rm);
                        if fs == rs {
                            assert_eq!(route.pre, SimTime::ZERO);
                            assert_eq!(route.post, SimTime::ZERO);
                        }
                        if mode == NumaMode::AllToAll || mode == NumaMode::Proxy {
                            // Affine modes always land on the requested socket.
                            assert_eq!(server.port % 2, rs);
                        }
                    }
                }
            }
        }
    }
}
