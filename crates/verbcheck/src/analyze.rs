//! The analysis pass: one walk over the event list.
//!
//! Per-post rules (E001, E002, W201, W204) fire immediately. Queue rules
//! (E003, E004) track per-QP send-queue and completion-queue pressure
//! between poll points. The race rules (W102/W103/E005) run an
//! interval-lattice dataflow over `(machine, MR, byte-range)` footprints
//! ([`crate::footprint::FootprintIndex`]): every one-sided post joins its
//! remote byte range into the outstanding lattice, happens-before edges
//! come from poll points (retiring a signaled CQE retires every WR posted
//! before it on that QP — RC ordering) and from the same-QP ordered
//! channel (a QP never conflicts with itself). Overlap reports name the
//! exact conflicting bytes, carry both posting sites, and split by kind:
//! write-write in the same poll window is *provably* unordered (E005,
//! error), write-write across windows is potential (W102), and any
//! read-write overlap is W103. Pattern lints (W202, W203) accumulate
//! per-region access footprints and report at the end of the walk.

use crate::diag::{Code, Diagnostic, Span};
use crate::fix::Fix;
use crate::footprint::{FootprintIndex, OpSpan};
use crate::program::{Event, VerbProgram};
use rnicsim::{DeviceCaps, MrId, QpNum, VerbKind, WorkRequest};
use std::collections::BTreeMap;

/// Tunables of the guideline lints (W2xx). Defaults match the paper's
/// case-study geometry: 2 KB consolidation blocks (§IV-B's hot blocks)
/// and a θ of 8 absorbed writes before a flush is clearly worthwhile.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// W203: writes to one block before the "consolidate" lint fires.
    pub theta: usize,
    /// W203: block size writes should consolidate into.
    pub block_bytes: u64,
    /// W203: a write only counts as "small" at or below this size.
    pub small_write_max: u64,
    /// W202: minimum accesses to a region before the pattern is judged.
    pub thrash_min_accesses: usize,
    /// W202: fraction of non-sequential page steps that makes a pattern
    /// "random" (0.5 = half the steps jump more than one page).
    pub random_fraction: f64,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            theta: 8,
            block_bytes: 2048,
            small_write_max: 256,
            thrash_min_accesses: 8,
            random_fraction: 0.5,
        }
    }
}

/// One outstanding (posted, not yet known-complete) work request, for
/// queue bookkeeping and poll retirement. Byte footprints live in the
/// [`FootprintIndex`].
struct OutOp {
    event: usize,
    signaled: bool,
}

/// Per-QP analysis state.
#[derive(Default)]
struct QpState {
    unsignaled_run: usize,
    wedge_reported: bool,
    outstanding_cqes: usize,
    overflow_reported: bool,
    outstanding: Vec<OutOp>,
}

/// Per-remote-MR footprint for the pattern lints.
#[derive(Default)]
struct MrFootprint {
    first_event: usize,
    accesses: usize,
    jumps: usize,
    last_page: Option<u64>,
    /// Largest single payload seen — sizes the W202 relayout slot.
    max_len: u64,
    /// W203 state: block base → (small-write count, reported).
    blocks: BTreeMap<u64, (usize, bool)>,
}

fn kind_name(kind: &VerbKind) -> &'static str {
    match kind {
        VerbKind::Write => "Write",
        VerbKind::Read => "Read",
        VerbKind::CompareSwap { .. } => "CompareSwap",
        VerbKind::FetchAdd { .. } => "FetchAdd",
        VerbKind::Send => "Send",
    }
}

fn is_remote_write(kind: &VerbKind) -> bool {
    matches!(kind, VerbKind::Write | VerbKind::CompareSwap { .. } | VerbKind::FetchAdd { .. })
}

/// Analyze with default [`LintOptions`].
pub fn analyze(prog: &VerbProgram, caps: &DeviceCaps) -> Vec<Diagnostic> {
    analyze_with(prog, caps, &LintOptions::default())
}

/// Whether any diagnostic is error-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity() == crate::diag::Severity::Error)
}

/// Analyze a program against device capabilities and lint tunables.
/// Diagnostics come back in event order; whole-program pattern lints
/// (W202) follow, ordered by (machine, MR).
pub fn analyze_with(prog: &VerbProgram, caps: &DeviceCaps, opts: &LintOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut qp_states: BTreeMap<u32, QpState> = BTreeMap::new();
    let mut footprints: BTreeMap<(usize, u32), MrFootprint> = BTreeMap::new();
    let mut index = FootprintIndex::new();
    // Global poll counter: two posts with equal counter values have
    // provably no poll — of any QP — between them, so nothing the
    // program could have observed orders them (the E005 premise).
    let mut poll_count = 0u64;

    for (idx, event) in prog.events().iter().enumerate() {
        match event {
            Event::Post { qp, wr } => check_post(
                prog,
                caps,
                opts,
                idx,
                *qp,
                wr,
                &mut qp_states,
                &mut footprints,
                &mut index,
                poll_count,
                &mut diags,
            ),
            Event::Poll { qp, count } => {
                poll_count += 1;
                let st = qp_states.entry(qp.0).or_default();
                // Retire the oldest `count` signaled WRs plus, by RC
                // ordering, every unsignaled WR posted before them.
                let mut seen = 0usize;
                let mut cut = 0usize;
                for (i, op) in st.outstanding.iter().enumerate() {
                    if op.signaled {
                        seen += 1;
                        cut = i + 1;
                        if seen == *count {
                            break;
                        }
                    }
                }
                if cut > 0 {
                    // Mirror the retirement into the race lattice: the
                    // poll is the happens-before edge that removes these
                    // footprints from every later conflict check.
                    index.retire(*qp, st.outstanding[cut - 1].event);
                }
                st.outstanding.drain(..cut);
                st.outstanding_cqes = st.outstanding_cqes.saturating_sub(seen);
                if st.outstanding_cqes <= caps.cq_depth {
                    st.overflow_reported = false;
                }
            }
        }
    }

    // Whole-program pattern lint: MTT thrash (W202).
    for ((machine, mr), fp) in &footprints {
        if fp.accesses < opts.thrash_min_accesses {
            continue;
        }
        let decl = match prog.find_mr(*machine, MrId(*mr)) {
            Some(d) => d,
            None => continue, // already an E001
        };
        if decl.len <= caps.mtt_coverage_bytes() {
            continue; // the whole region fits in the MTT cache (Fig 6d)
        }
        let steps = fp.accesses - 1;
        if steps == 0 || (fp.jumps as f64) / (steps as f64) < opts.random_fraction {
            continue;
        }
        let slot = fp.max_len.max(1).div_ceil(caps.page_bytes) * caps.page_bytes;
        diags.push(Diagnostic {
            code: Code::W202,
            message: format!(
                "{} accesses stride randomly over MR {} on machine {} ({} B registered, \
                 MTT cache covers only {} B) — each op will pay a translation fetch; \
                 shrink the region or access it sequentially",
                fp.accesses,
                mr,
                machine,
                decl.len,
                caps.mtt_coverage_bytes()
            ),
            span: Span::event(fp.first_event),
            related: None,
            fix: Some(Fix::Relayout { machine: *machine, mr: *mr, slot }),
        });
    }

    diags
}

#[allow(clippy::too_many_arguments)]
fn check_post(
    prog: &VerbProgram,
    caps: &DeviceCaps,
    opts: &LintOptions,
    idx: usize,
    qp: QpNum,
    wr: &WorkRequest,
    qp_states: &mut BTreeMap<u32, QpState>,
    footprints: &mut BTreeMap<(usize, u32), MrFootprint>,
    index: &mut FootprintIndex,
    poll_count: u64,
    diags: &mut Vec<Diagnostic>,
) {
    let span = Span::post(idx, qp, wr.wr_id);
    let decl = match prog.find_qp(qp) {
        Some(d) => *d,
        None => {
            diags.push(Diagnostic {
                code: Code::E001,
                message: format!("post on undeclared QP {}", qp.0),
                span,
                related: None,
                fix: None,
            });
            return;
        }
    };

    // --- W201: SGL length vs device max (§III-A). ---
    if wr.sgl.len() > caps.max_sge {
        diags.push(Diagnostic {
            code: Code::W201,
            message: format!(
                "SGL has {} entries but the device supports max_sge = {}; \
                 the post is rejected on real hardware — split the request",
                wr.sgl.len(),
                caps.max_sge
            ),
            span,
            related: None,
            fix: Some(Fix::SplitSgl { event: idx, max_sge: caps.max_sge }),
        });
    }

    // --- E001 (local side) + W204 (local buffer placement). ---
    for sge in &wr.sgl {
        match prog.find_mr(decl.local_machine, sge.mr) {
            None => diags.push(Diagnostic {
                code: Code::E001,
                message: format!(
                    "local SGE references MR {} which is not registered on machine {}",
                    sge.mr.0, decl.local_machine
                ),
                span,
                related: None,
                fix: None,
            }),
            Some(m) => {
                if sge.offset.checked_add(sge.len).is_none_or(|end| end > m.len) {
                    diags.push(Diagnostic {
                        code: Code::E001,
                        message: format!(
                            "local SGE [{:#x}, {:#x}) is out of bounds of MR {} (len {:#x})",
                            sge.offset,
                            sge.offset.wrapping_add(sge.len),
                            sge.mr.0,
                            m.len
                        ),
                        span,
                        related: None,
                        fix: None,
                    });
                } else if m.socket != decl.local_port_socket {
                    diags.push(Diagnostic {
                        code: Code::W204,
                        message: format!(
                            "local buffer MR {} lives on socket {} but QP {}'s port is on \
                             socket {}; the payload DMA crosses QPI — register the buffer \
                             on socket {} or move the QP",
                            sge.mr.0,
                            m.socket,
                            qp.0,
                            decl.local_port_socket,
                            decl.local_port_socket
                        ),
                        span,
                        related: None,
                        fix: Some(Fix::MoveToSocket {
                            machine: decl.local_machine,
                            mr: sge.mr.0,
                            socket: decl.local_port_socket,
                        }),
                    });
                }
            }
        }
    }

    // --- Remote side: E001 bounds/rkey, E002 atomics, W204 placement. ---
    let payload = wr.payload_bytes();
    let mut remote_range: Option<(usize, MrId, u64, u64)> = None;
    if wr.kind.is_one_sided() {
        match wr.remote {
            None => diags.push(Diagnostic {
                code: Code::E001,
                message: format!("one-sided {} has no remote address", kind_name(&wr.kind)),
                span,
                related: None,
                fix: None,
            }),
            Some((rkey, off)) => {
                let mr = MrId(rkey.0 as u32);
                match prog.find_mr(decl.remote_machine, mr) {
                    None => diags.push(Diagnostic {
                        code: Code::E001,
                        message: format!(
                            "rkey {:#x} does not name a registered MR on machine {}",
                            rkey.0, decl.remote_machine
                        ),
                        span,
                        related: None,
                        fix: None,
                    }),
                    Some(m) => {
                        if off.checked_add(payload).is_none_or(|end| end > m.len) {
                            diags.push(Diagnostic {
                                code: Code::E001,
                                message: format!(
                                    "remote access [{:#x}, {:#x}) is out of bounds of MR {} \
                                     (len {:#x})",
                                    off,
                                    off.wrapping_add(payload),
                                    mr.0,
                                    m.len
                                ),
                                span,
                                related: None,
                                fix: None,
                            });
                        } else {
                            if m.socket != decl.remote_port_socket {
                                diags.push(Diagnostic {
                                    code: Code::W204,
                                    message: format!(
                                        "remote MR {} lives on socket {} but the target port \
                                         is on socket {}; the placement DMA crosses QPI on \
                                         every access",
                                        mr.0, m.socket, decl.remote_port_socket
                                    ),
                                    span,
                                    related: None,
                                    fix: Some(Fix::MoveToSocket {
                                        machine: decl.remote_machine,
                                        mr: mr.0,
                                        socket: decl.remote_port_socket,
                                    }),
                                });
                            }
                            remote_range =
                                Some((decl.remote_machine, mr, off, off + payload.max(1)));

                            // Footprints for the pattern lints.
                            let fp = footprints.entry((decl.remote_machine, mr.0)).or_insert_with(
                                || MrFootprint { first_event: idx, ..Default::default() },
                            );
                            let page = off / caps.page_bytes;
                            if let Some(last) = fp.last_page {
                                if page.abs_diff(last) > 1 {
                                    fp.jumps += 1;
                                }
                            }
                            fp.last_page = Some(page);
                            fp.accesses += 1;
                            fp.max_len = fp.max_len.max(payload);

                            // W203: small writes that should consolidate.
                            if matches!(wr.kind, VerbKind::Write)
                                && payload <= opts.small_write_max
                                && off / opts.block_bytes
                                    == (off + payload.max(1) - 1) / opts.block_bytes
                            {
                                let base = off / opts.block_bytes * opts.block_bytes;
                                let (count, reported) = fp.blocks.entry(base).or_insert((0, false));
                                *count += 1;
                                if *count >= opts.theta && !*reported {
                                    *reported = true;
                                    diags.push(Diagnostic {
                                        code: Code::W203,
                                        message: format!(
                                            "{} small writes (≤ {} B each) landed in the \
                                             {}-byte block at {:#x} of MR {}; absorb them \
                                             locally and flush one block write",
                                            count,
                                            opts.small_write_max,
                                            opts.block_bytes,
                                            base,
                                            mr.0
                                        ),
                                        span,
                                        related: None,
                                        fix: Some(Fix::Consolidate {
                                            machine: decl.remote_machine,
                                            mr: mr.0,
                                            block_base: base,
                                            block_bytes: opts.block_bytes,
                                            small_write_max: opts.small_write_max,
                                        }),
                                    });
                                }
                            }
                        }
                    }
                }

                // E002 applies even when bounds are fine or broken — the
                // alignment fault is independent of the bounds fault.
                if wr.kind.is_atomic() {
                    if off % 8 != 0 {
                        diags.push(Diagnostic {
                            code: Code::E002,
                            message: format!(
                                "atomic target offset {:#x} is not 8-byte aligned",
                                off
                            ),
                            span,
                            related: None,
                            fix: None,
                        });
                    }
                    let sgl_bytes: u64 = wr.sgl.iter().map(|s| s.len).sum();
                    if sgl_bytes != 8 {
                        diags.push(Diagnostic {
                            code: Code::E002,
                            message: format!(
                                "atomic result SGL is {} bytes; CAS/FAA transfer exactly 8",
                                sgl_bytes
                            ),
                            span,
                            related: None,
                            fix: None,
                        });
                    }
                }
            }
        }
    }

    // --- W102/W103/E005: byte-precise races against every outstanding
    // footprint on other QPs. Every conflicting pair is reported, at the
    // later post, naming the exact overlapping bytes. ---
    if let Some((rm, rmr, start, end)) = remote_range {
        let writes = is_remote_write(&wr.kind);
        let atomic = wr.kind.is_atomic();
        for op in index.conflicts(rm, rmr, start, end, qp) {
            if !(writes || op.writes) {
                continue; // read-read overlap is benign
            }
            let (cs, ce) = (start.max(op.start), end.min(op.end));
            let related = Some((
                Span::post(op.event, op.qp, op.wr_id),
                format!(
                    "unretired {} to [{:#x}, {:#x}) on qp {}",
                    op.kind_name, op.start, op.end, op.qp.0
                ),
            ));
            let diag = if writes && op.writes {
                // Same poll window ⇒ nothing the program observed orders
                // the writes: provably racy, an error — unless both sides
                // are atomics, which the RNIC serializes (§III-E).
                if op.polls_at_post == poll_count && !(atomic && op.atomic) {
                    Diagnostic {
                        code: Code::E005,
                        message: format!(
                            "{} to [{:#x}, {:#x}) of MR {} conflicts with an unordered write \
                             on qp {} in the same poll window — bytes [{:#x}, {:#x}) are \
                             undefined; poll between the posts",
                            kind_name(&wr.kind),
                            start,
                            end,
                            rmr.0,
                            op.qp.0,
                            cs,
                            ce
                        ),
                        span,
                        related,
                        fix: None,
                    }
                } else {
                    Diagnostic {
                        code: Code::W102,
                        message: format!(
                            "{} to [{:#x}, {:#x}) of MR {} overlaps bytes [{:#x}, {:#x}) with \
                             a potentially unretired write on qp {}; poll the earlier op's \
                             completion before posting this one",
                            kind_name(&wr.kind),
                            start,
                            end,
                            rmr.0,
                            cs,
                            ce,
                            op.qp.0
                        ),
                        span,
                        related,
                        fix: None,
                    }
                }
            } else {
                Diagnostic {
                    code: Code::W103,
                    message: format!(
                        "{} to [{:#x}, {:#x}) of MR {} overlaps bytes [{:#x}, {:#x}) with an \
                         unretired {} on qp {} — the read may observe either version; poll \
                         the earlier completion first",
                        kind_name(&wr.kind),
                        start,
                        end,
                        rmr.0,
                        cs,
                        ce,
                        op.kind_name,
                        op.qp.0
                    ),
                    span,
                    related,
                    fix: None,
                }
            };
            diags.push(diag);
        }
        index.insert(
            rm,
            rmr,
            OpSpan {
                start,
                end,
                qp,
                wr_id: wr.wr_id,
                event: idx,
                writes,
                atomic,
                kind_name: kind_name(&wr.kind),
                polls_at_post: poll_count,
            },
        );
    }

    // --- E003/E004: queue-pressure bookkeeping. ---
    let st = qp_states.entry(qp.0).or_default();
    if wr.signaled {
        st.unsignaled_run = 0;
        st.wedge_reported = false;
        st.outstanding_cqes += 1;
        if st.outstanding_cqes > caps.cq_depth && !st.overflow_reported {
            st.overflow_reported = true;
            diags.push(Diagnostic {
                code: Code::E004,
                message: format!(
                    "{} signaled completions are outstanding on QP {} but the CQ holds \
                     {}; poll before posting more",
                    st.outstanding_cqes, qp.0, caps.cq_depth
                ),
                span,
                related: None,
                fix: None,
            });
        }
    } else {
        st.unsignaled_run += 1;
        if st.unsignaled_run >= caps.sq_depth && !st.wedge_reported {
            st.wedge_reported = true;
            diags.push(Diagnostic {
                code: Code::E003,
                message: format!(
                    "{} consecutive unsignaled WRs fill QP {}'s send queue (depth {}); \
                     slots are only reclaimed by later signaled completions, so the \
                     queue wedges — signal at least every {} WRs",
                    st.unsignaled_run,
                    qp.0,
                    caps.sq_depth,
                    caps.sq_depth - 1
                ),
                span,
                related: None,
                fix: None,
            });
        }
    }
    st.outstanding.push(OutOp { event: idx, signaled: wr.signaled });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnicsim::{RKey, Sge};

    #[test]
    fn clean_program_is_clean() {
        let mut p = VerbProgram::new();
        p.mr(0, MrId(0), 1, 4096);
        p.mr(1, MrId(1), 1, 4096);
        p.qp(QpNum(0), 0, 1, 1, 1);
        p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
        p.poll(QpNum(0), 1);
        assert!(analyze(&p, &DeviceCaps::default()).is_empty());
    }

    #[test]
    fn poll_retires_unsignaled_predecessors() {
        // Unsignaled write then signaled write; polling one CQE retires
        // both, so a later overlapping read on another QP is race-free.
        let mut p = VerbProgram::new();
        p.mr(0, MrId(0), 1, 4096);
        p.mr(1, MrId(1), 1, 4096);
        p.qp(QpNum(0), 0, 1, 1, 1);
        p.qp(QpNum(1), 0, 1, 1, 1);
        let mut w = WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0);
        w.signaled = false;
        p.post(QpNum(0), w);
        p.post(QpNum(0), WorkRequest::write(2, Sge::new(MrId(0), 0, 64), RKey(1), 64));
        p.poll(QpNum(0), 1);
        p.post(QpNum(1), WorkRequest::read(3, Sge::new(MrId(0), 0, 64), RKey(1), 0));
        let diags = analyze(&p, &DeviceCaps::default());
        assert!(diags.is_empty(), "{diags:#?}");
    }
}
