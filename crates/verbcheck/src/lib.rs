//! # verbcheck — static analysis for verb programs
//!
//! The paper's thesis is that one-sided verbs are *memory* accesses and
//! deserve the same discipline as local memory: ordering, alignment,
//! batching, and placement rules (§III-A–E). This crate turns those
//! guidelines — plus the ibverbs rules that real RNICs enforce in
//! hardware — into a compiler-style checker that runs *before*
//! simulation and emits diagnostics with stable codes, severities, and
//! spans.
//!
//! A [`VerbProgram`] is the analyzable form of what an application does:
//! MR and QP declarations plus an ordered sequence of posts and poll
//! points. [`analyze`] walks it once and reports:
//!
//! | code | severity | rule |
//! |---|---|---|
//! | E001 | error | SGE out of registered-MR bounds / bad rkey |
//! | E002 | error | atomic target not 8-byte aligned or SGL ≠ 8 bytes |
//! | E003 | error | unsignaled run ≥ SQ depth (send-queue wedge) |
//! | E004 | error | signaled completions can exceed CQ depth between polls |
//! | E005 | error | same-poll-window cross-QP writes to overlapping bytes |
//! | W102 | warning | potential cross-QP write-write overlap across poll windows |
//! | W103 | warning | cross-QP read racing an unretired write to the same bytes |
//! | W201 | warning | SGL longer than device `max_sge` (§III-A) |
//! | W202 | warning | random stride over a region that thrashes the MTT cache (§III-B) |
//! | W203 | warning | ≥ θ small writes to one aligned block — consolidate (§III-C) |
//! | W204 | warning | buffer socket differs from the QP port's socket (§III-D) |
//!
//! (W101, the retired QP-granular race advisory, was superseded by the
//! byte-precise W102/W103/E005 family; the number is never reused.)
//!
//! Errors describe programs that fault or corrupt on real hardware even
//! if they "work" in a simulator; warnings describe programs that leave
//! paper-quantified performance on the table. Every W2xx warning also
//! carries a machine-applicable [`Fix`]; [`fix_to_fixpoint`] applies
//! them and re-lints until the program is warning-free.
//!
//! ## Example
//!
//! ```
//! use rnicsim::{DeviceCaps, MrId, QpNum, Sge, WorkRequest, RKey};
//! use verbcheck::{analyze, has_errors, VerbProgram};
//!
//! let mut p = VerbProgram::new();
//! p.mr(0, MrId(0), 1, 4096); // local staging buffer
//! p.mr(1, MrId(7), 1, 4096); // remote table
//! p.qp(QpNum(0), 0, 1, 1, 1);
//! // In bounds, aligned, signaled, polled: no diagnostics.
//! p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(7), 0));
//! p.poll(QpNum(0), 1);
//! let diags = analyze(&p, &DeviceCaps::default());
//! assert!(diags.is_empty());
//! assert!(!has_errors(&diags));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod diag;
pub mod fix;
pub mod footprint;
pub mod program;

pub use analyze::{analyze, analyze_with, has_errors, LintOptions};
pub use diag::{Code, Diagnostic, Severity, Span};
pub use fix::{apply_fix, fix_to_fixpoint, Fix, FixOutcome};
pub use footprint::{FootprintIndex, IntervalSet, OpSpan};
pub use program::{Event, MrDecl, QpDecl, VerbProgram};
