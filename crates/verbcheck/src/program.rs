//! The analyzable form of a verb program.
//!
//! A [`VerbProgram`] is declarations plus an ordered event list:
//!
//! * **MR declarations** — which registered regions exist on which
//!   machine, their socket, and their length (the bounds that E001
//!   checks, the geometry that W202/W204 reason over).
//! * **QP declarations** — which queue pairs exist, which machines they
//!   connect, and which NUMA socket owns each side's port.
//! * **Events** — `Post` (a work request enters a send queue) and `Poll`
//!   (the CPU retires up to `n` completions of a QP). Poll points are the
//!   only source of cross-QP ordering: a one-sided op is *known finished*
//!   only once its CQE — or a later CQE of the same QP — has been polled.
//!
//! Programs follow the repo-wide convention that `RKey(x)` names `MrId(x
//! as u32)` on the QP's remote machine.

use rnicsim::{MrId, QpNum, WorkRequest};

/// A registered memory region, as the analyzer sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MrDecl {
    /// Machine the region lives on.
    pub machine: usize,
    /// Region id (unique per machine).
    pub mr: MrId,
    /// NUMA socket whose DRAM holds the region.
    pub socket: usize,
    /// Length in bytes.
    pub len: u64,
}

/// A queue pair, as the analyzer sees it. Queue depths are device-wide
/// ([`rnicsim::DeviceCaps`]), not per-QP — matching the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QpDecl {
    /// Program-unique QP number (the *client* QP of a connection).
    pub qp: QpNum,
    /// Machine the posting side runs on.
    pub local_machine: usize,
    /// Machine one-sided verbs of this QP target.
    pub remote_machine: usize,
    /// Socket owning the local NIC port the QP is bound to.
    pub local_port_socket: usize,
    /// Socket owning the remote NIC port.
    pub remote_port_socket: usize,
}

/// One step of the program.
#[derive(Clone, Debug)]
pub enum Event {
    /// A work request enters `qp`'s send queue.
    Post {
        /// Posting queue pair.
        qp: QpNum,
        /// The request.
        wr: WorkRequest,
    },
    /// The CPU polls up to `count` completions off `qp`'s CQ, retiring
    /// the oldest signaled WRs (and, by RC ordering, every unsignaled WR
    /// posted before them).
    Poll {
        /// Polled queue pair.
        qp: QpNum,
        /// Maximum completions retired.
        count: usize,
    },
}

/// A complete analyzable program.
#[derive(Clone, Debug, Default)]
pub struct VerbProgram {
    pub(crate) mrs: Vec<MrDecl>,
    pub(crate) qps: Vec<QpDecl>,
    pub(crate) events: Vec<Event>,
}

impl VerbProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a memory region. Returns `self` for chaining.
    pub fn mr(&mut self, machine: usize, mr: MrId, socket: usize, len: u64) -> &mut Self {
        self.mrs.push(MrDecl { machine, mr, socket, len });
        self
    }

    /// Declare a queue pair connecting `local_machine` to
    /// `remote_machine`, with each side's port on the given socket.
    pub fn qp(
        &mut self,
        qp: QpNum,
        local_machine: usize,
        remote_machine: usize,
        local_port_socket: usize,
        remote_port_socket: usize,
    ) -> &mut Self {
        self.qps.push(QpDecl {
            qp,
            local_machine,
            remote_machine,
            local_port_socket,
            remote_port_socket,
        });
        self
    }

    /// Append a post event; returns its event index (usable as a span).
    pub fn post(&mut self, qp: QpNum, wr: WorkRequest) -> usize {
        self.events.push(Event::Post { qp, wr });
        self.events.len() - 1
    }

    /// Append a poll event retiring up to `count` completions.
    pub fn poll(&mut self, qp: QpNum, count: usize) -> usize {
        self.events.push(Event::Poll { qp, count });
        self.events.len() - 1
    }

    /// Declared regions.
    pub fn mrs(&self) -> &[MrDecl] {
        &self.mrs
    }

    /// Declared queue pairs.
    pub fn qps(&self) -> &[QpDecl] {
        &self.qps
    }

    /// The event list.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Look up an MR declaration by machine and id.
    pub fn find_mr(&self, machine: usize, mr: MrId) -> Option<&MrDecl> {
        self.mrs.iter().find(|d| d.machine == machine && d.mr == mr)
    }

    /// Look up a QP declaration.
    pub fn find_qp(&self, qp: QpNum) -> Option<&QpDecl> {
        self.qps.iter().find(|d| d.qp == qp)
    }

    /// Number of post events.
    pub fn post_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, Event::Post { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnicsim::{RKey, Sge};

    #[test]
    fn builder_round_trip() {
        let mut p = VerbProgram::new();
        p.mr(0, MrId(0), 1, 4096).mr(1, MrId(3), 0, 1 << 20);
        p.qp(QpNum(0), 0, 1, 1, 0);
        let i0 = p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 8), RKey(3), 0));
        let i1 = p.poll(QpNum(0), 1);
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(p.mrs().len(), 2);
        assert_eq!(p.find_mr(1, MrId(3)).unwrap().len, 1 << 20);
        assert!(p.find_mr(0, MrId(3)).is_none(), "MR ids are per-machine");
        assert_eq!(p.find_qp(QpNum(0)).unwrap().remote_machine, 1);
        assert_eq!(p.post_count(), 1);
        assert_eq!(p.events().len(), 2);
    }
}
