//! Diagnostics: stable codes, severities, spans, compiler-style rendering.

use crate::fix::Fix;
use rnicsim::{QpNum, WrId};

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Guideline violation: the program works but leaves paper-quantified
    /// performance on the table.
    Warning,
    /// Hazard: the program faults or corrupts on real RNICs even if it
    /// appears to work in simulation.
    Error,
}

impl Severity {
    /// Lowercase label used in rendered diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes. The number never changes meaning across
/// versions; tools may match on it.
///
/// Retired codes are never reused: **W101** (QP-granular race
/// advisory) was superseded by the byte-precise W102/W103/E005 family
/// and its number is permanently reserved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // each variant is documented by `title`
pub enum Code {
    E001,
    E002,
    E003,
    E004,
    E005,
    W102,
    W103,
    W201,
    W202,
    W203,
    W204,
}

/// Every code, in rendering order (used by the golden snapshot test).
pub const ALL_CODES: &[Code] = &[
    Code::E001,
    Code::E002,
    Code::E003,
    Code::E004,
    Code::E005,
    Code::W102,
    Code::W103,
    Code::W201,
    Code::W202,
    Code::W203,
    Code::W204,
];

impl Code {
    /// The stable string form, e.g. `"E001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
            Code::E005 => "E005",
            Code::W102 => "W102",
            Code::W103 => "W103",
            Code::W201 => "W201",
            Code::W202 => "W202",
            Code::W203 => "W203",
            Code::W204 => "W204",
        }
    }

    /// Severity class of the code.
    pub fn severity(self) -> Severity {
        match self {
            Code::E001 | Code::E002 | Code::E003 | Code::E004 | Code::E005 => Severity::Error,
            _ => Severity::Warning,
        }
    }

    /// One-line description of the rule.
    pub fn title(self) -> &'static str {
        match self {
            Code::E001 => "SGE out of registered-MR bounds or bad rkey",
            Code::E002 => "misaligned or mis-sized RDMA atomic",
            Code::E003 => "unsignaled run can wedge the send queue",
            Code::E004 => "signaled completions can overflow the CQ between polls",
            Code::E005 => "same-poll-window cross-QP writes to overlapping bytes",
            Code::W102 => "potential cross-QP write-write overlap across poll windows",
            Code::W103 => "cross-QP read racing an unretired write to the same bytes",
            Code::W201 => "SGL longer than the device's max_sge",
            Code::W202 => "random access pattern thrashes the MTT cache",
            Code::W203 => "small writes to one block should consolidate",
            Code::W204 => "buffer placed on the socket opposite the QP's port",
        }
    }

    /// The paper section (or spec rule) the code is grounded in.
    pub fn grounding(self) -> &'static str {
        match self {
            Code::E001 => {
                "ibverbs: out-of-bounds one-sided access completes with RemoteAccessError"
            }
            Code::E002 => "§III-E: RDMA atomics operate on aligned 8-byte words",
            Code::E003 => "ibverbs: SQ slots are reclaimed only by later signaled completions",
            Code::E004 => "ibverbs: CQ overrun is fatal to the QP",
            Code::E005 => {
                "§II-A: with no poll between them, nothing orders the writes — the bytes are undefined"
            }
            Code::W102 => {
                "§II-A: one-sided writes on different QPs are unordered until a CQE is polled"
            }
            Code::W103 => {
                "§II-A: a read racing an unpolled write may observe either version of the bytes"
            }
            Code::W201 => {
                "§III-A: SGL beyond max_sge is rejected; long SGLs serialize on the gather engine"
            }
            Code::W202 => {
                "§III-B: random access beyond MTT-cache coverage pays a host fetch per op"
            }
            Code::W203 => {
                "§III-C: consolidating θ small writes into one block write multiplies throughput"
            }
            Code::W204 => "§III-D: QPI crossings add up to ~55% latency on small verbs",
        }
    }
}

/// Where in the program a diagnostic points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Index into [`crate::VerbProgram`]'s event list.
    pub event: usize,
    /// QP the offending event acts on, when applicable.
    pub qp: Option<QpNum>,
    /// Work-request id, when the event is a post.
    pub wr_id: Option<WrId>,
}

impl Span {
    /// A span for a post on `qp` with `wr_id`.
    pub fn post(event: usize, qp: QpNum, wr_id: WrId) -> Self {
        Span { event, qp: Some(qp), wr_id: Some(wr_id) }
    }

    /// A span for a non-post event (poll, or a whole-program finding).
    pub fn event(event: usize) -> Self {
        Span { event, qp: None, wr_id: None }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "program:{}", self.event)?;
        match (self.qp, self.wr_id) {
            (Some(qp), Some(wr)) => write!(f, " (qp {}, wr {})", qp.0, wr.0),
            (Some(qp), None) => write!(f, " (qp {})", qp.0),
            _ => Ok(()),
        }
    }
}

/// One finding of the analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (also fixes the severity).
    pub code: Code,
    /// What, concretely, is wrong here.
    pub message: String,
    /// Where the finding anchors.
    pub span: Span,
    /// A second program point involved in the finding (e.g. the earlier
    /// conflicting post of a W102/W103/E005 race).
    pub related: Option<(Span, String)>,
    /// Machine-applicable repair, when the rule knows one (the W2xx
    /// guideline lints). Applied by [`crate::fix_to_fixpoint`].
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// Severity, derived from the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Render in the compiler style:
    ///
    /// ```text
    /// error[E002]: atomic target offset 12 is not 8-byte aligned
    ///   --> program:4 (qp 1, wr 7)
    ///   = note: §III-E: RDMA atomics operate on aligned 8-byte words
    ///   = fix: ... (only when the rule carries a machine-applicable fix)
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}\n",
            self.severity().label(),
            self.code.as_str(),
            self.message,
            self.span
        );
        if let Some((span, what)) = &self.related {
            out.push_str(&format!("  = related: {span} — {what}\n"));
        }
        out.push_str(&format!("  = note: {}\n", self.code.grounding()));
        if let Some(fix) = &self.fix {
            out.push_str(&format!("  = fix: {}\n", fix.describe()));
        }
        out
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::E001.as_str(), "E001");
        assert_eq!(Code::W204.as_str(), "W204");
        assert_eq!(ALL_CODES.len(), 11);
        for c in ALL_CODES {
            assert_eq!(c.as_str().len(), 4);
        }
    }

    #[test]
    fn severity_split_follows_the_letter() {
        for c in ALL_CODES {
            let expect =
                if c.as_str().starts_with('E') { Severity::Error } else { Severity::Warning };
            assert_eq!(c.severity(), expect, "{}", c.as_str());
        }
    }

    #[test]
    fn render_shape() {
        let d = Diagnostic {
            code: Code::E002,
            message: "atomic target offset 12 is not 8-byte aligned".into(),
            span: Span::post(4, QpNum(1), WrId(7)),
            related: None,
            fix: None,
        };
        let r = d.render();
        assert!(r.starts_with("error[E002]: atomic target offset 12"));
        assert!(r.contains("--> program:4 (qp 1, wr 7)"));
        assert!(r.contains("note: §III-E"));
        assert!(!r.contains("= fix:"), "no fix line when the rule has none");
    }

    #[test]
    fn render_includes_related_span() {
        let d = Diagnostic {
            code: Code::W103,
            message: "unordered overlap".into(),
            span: Span::post(9, QpNum(2), WrId(1)),
            related: Some((
                Span::post(3, QpNum(1), WrId(0)),
                "earlier Write to [0x0, 0x40)".into(),
            )),
            fix: None,
        };
        assert!(d.render().contains("related: program:3 (qp 1, wr 0) — earlier Write"));
    }

    #[test]
    fn render_includes_fix_line_last() {
        let d = Diagnostic {
            code: Code::W204,
            message: "buffer on the wrong socket".into(),
            span: Span::post(2, QpNum(0), WrId(0)),
            related: None,
            fix: Some(Fix::MoveToSocket { machine: 1, mr: 0, socket: 1 }),
        };
        let r = d.render();
        let fix_at = r.find("= fix:").expect("fix line rendered");
        let note_at = r.find("= note:").expect("note line rendered");
        assert!(fix_at > note_at, "fix renders after the note");
        assert!(r.ends_with('\n'));
    }
}
