//! Machine-applicable fixes for the W2xx guideline lints.
//!
//! Each W2xx diagnostic carries a [`Fix`]: a concrete program rewrite
//! that removes the violation the way the paper's matching guideline
//! prescribes (§III-A split the SGL, §III-B compact the footprint,
//! §III-C consolidate small writes, §III-D move the buffer next to the
//! port). [`fix_to_fixpoint`] applies fixes and re-lints until no
//! warning remains, mirroring `repro --lint --fix`.
//!
//! Fixes are honest about semantics: [`Fix::preserves_results`] is true
//! only when the rewritten program provably computes the same remote
//! bytes (SGL splits and socket moves); layout rewrites and
//! consolidation change *where* bytes land by design, so the fixpoint
//! driver only replays-and-compares programs whose applied fixes all
//! claim equivalence.

use crate::analyze::{analyze_with, LintOptions};
use crate::diag::Diagnostic;
use crate::program::{Event, MrDecl, VerbProgram};
use rnicsim::{DeviceCaps, MrId, RKey, Sge, VerbKind, WorkRequest};
use std::collections::BTreeMap;

/// A concrete, machine-applicable repair attached to a W2xx diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fix {
    /// W201: split the oversized SGL at `event` into consecutive posts
    /// of at most `max_sge` entries each, remote offset advancing by
    /// the bytes of the preceding chunks. Byte-identical: the chunks
    /// ride the same ordered QP channel.
    SplitSgl {
        /// Event index of the oversized post.
        event: usize,
        /// Device SGL limit to split down to.
        max_sge: usize,
    },
    /// W202: compact the MR's accessed footprint — remap each distinct
    /// remote offset to a dense `slot`-byte slot (offset-order
    /// preserving) and shrink the registration to the touched extent so
    /// it fits MTT-cache coverage. Changes the remote layout by design.
    Relayout {
        /// Machine owning the thrashed MR.
        machine: usize,
        /// The MR id.
        mr: u32,
        /// Bytes per compacted slot (max payload, page-rounded).
        slot: u64,
    },
    /// W203: absorb the block's small writes into a local
    /// ConsolidationBuffer (a synthesized shadow MR) flushed by one
    /// block-sized write. Changes untouched bytes inside the block (the
    /// flush writes the whole block) by design.
    Consolidate {
        /// Remote machine owning the written MR.
        machine: usize,
        /// The written MR id.
        mr: u32,
        /// First byte of the flagged block.
        block_base: u64,
        /// Block (and shadow buffer) size in bytes.
        block_bytes: u64,
        /// Upper payload bound defining "small" writes to absorb.
        small_write_max: u64,
    },
    /// W204: re-register the MR on the socket that owns the QP's port,
    /// eliminating the QPI crossing. Byte-identical: placement only.
    MoveToSocket {
        /// Machine owning the misplaced MR.
        machine: usize,
        /// The MR id.
        mr: u32,
        /// Socket to move it to (the port's socket).
        socket: usize,
    },
}

impl Fix {
    /// Human-readable rendering used on the diagnostic's `= fix:` line.
    pub fn describe(&self) -> String {
        match self {
            Fix::SplitSgl { event, max_sge } => format!(
                "split the SGL at program:{event} into chunks of at most {max_sge} SGEs \
                 (same QP, same bytes)"
            ),
            Fix::Relayout { machine, mr, slot } => format!(
                "compact MR {mr} on machine {machine}: remap each accessed offset to a dense \
                 {slot}-byte slot and shrink the registration to the touched footprint"
            ),
            Fix::Consolidate { machine, mr, block_base, block_bytes, .. } => format!(
                "absorb the small writes to block {block_base:#x} of MR {mr} on machine \
                 {machine} into a local {block_bytes}-byte ConsolidationBuffer flushed by one \
                 block write"
            ),
            Fix::MoveToSocket { machine, mr, socket } => format!(
                "re-register MR {mr} on machine {machine} on socket {socket}, the QP port's \
                 socket"
            ),
        }
    }

    /// Does the rewritten program compute byte-identical application
    /// results? True for SGL splits and socket moves; layout rewrites
    /// and consolidation relocate bytes by design.
    pub fn preserves_results(&self) -> bool {
        matches!(self, Fix::SplitSgl { .. } | Fix::MoveToSocket { .. })
    }

    /// Does applying the fix keep every event index stable? Index-stable
    /// fixes can be applied together in one round; index-shifting ones
    /// (splits, consolidations) must go one at a time because later
    /// fixes' event indices would dangle.
    fn index_stable(&self) -> bool {
        matches!(self, Fix::Relayout { .. } | Fix::MoveToSocket { .. })
    }
}

/// Apply one fix to `prog` in place. Fixes are defensive: if the
/// program no longer matches the fix's premise (already fixed, or the
/// rewrite would go out of bounds), the program is left unchanged.
pub fn apply_fix(prog: &mut VerbProgram, fix: &Fix) {
    match fix {
        Fix::SplitSgl { event, max_sge } => split_sgl(prog, *event, *max_sge),
        Fix::Relayout { machine, mr, slot } => relayout(prog, *machine, *mr, *slot),
        Fix::Consolidate { machine, mr, block_base, block_bytes, small_write_max } => {
            consolidate(prog, *machine, *mr, *block_base, *block_bytes, *small_write_max)
        }
        Fix::MoveToSocket { machine, mr, socket } => {
            for d in prog.mrs.iter_mut() {
                if d.machine == *machine && d.mr.0 == *mr {
                    d.socket = *socket;
                }
            }
        }
    }
}

fn split_sgl(prog: &mut VerbProgram, event: usize, max_sge: usize) {
    if max_sge == 0 {
        return;
    }
    let Some(Event::Post { qp, wr }) = prog.events.get(event).cloned() else { return };
    if wr.sgl.as_slice().len() <= max_sge || wr.kind.is_atomic() {
        return;
    }
    let sges = wr.sgl.as_slice().to_vec();
    let mut chunks: Vec<Event> = Vec::new();
    let mut consumed = 0u64;
    for chunk in sges.chunks(max_sge) {
        let bytes: u64 = chunk.iter().map(|s| s.len).sum();
        chunks.push(Event::Post {
            qp,
            wr: WorkRequest {
                wr_id: wr.wr_id,
                kind: wr.kind.clone(),
                sgl: chunk.to_vec().into(),
                remote: wr.remote.map(|(rk, off)| (rk, off + consumed)),
                signaled: false,
            },
        });
        consumed += bytes;
    }
    // Only the final chunk signals, so the CQE count the program polls
    // for is unchanged.
    if let Some(Event::Post { wr, .. }) = chunks.last_mut() {
        wr.signaled = wr.signaled || wr_signaled(&prog.events[event]);
    }
    prog.events.splice(event..=event, chunks);
}

fn wr_signaled(ev: &Event) -> bool {
    matches!(ev, Event::Post { wr, .. } if wr.signaled)
}

fn relayout(prog: &mut VerbProgram, machine: usize, mr: u32, slot: u64) {
    let slot = slot.max(1);
    // Distinct remote offsets of one-sided ops into (machine, mr),
    // in offset order.
    let mut offsets: Vec<u64> = Vec::new();
    for ev in prog.events.iter() {
        if let Some((off, _)) = remote_access(prog, ev, machine, mr) {
            offsets.push(off);
        }
    }
    offsets.sort_unstable();
    offsets.dedup();
    if offsets.is_empty() {
        return;
    }
    let rank: BTreeMap<u64, u64> =
        offsets.iter().enumerate().map(|(i, &o)| (o, i as u64)).collect();
    // The compacted registration must still cover every remapped access
    // and every *local* SGE into the same region.
    let mut required = 0u64;
    for ev in prog.events.iter() {
        if let (Event::Post { qp, wr }, Some((off, payload))) =
            (ev, remote_access(prog, ev, machine, mr))
        {
            let _ = qp;
            let _ = wr;
            required = required.max(rank[&off] * slot + payload.max(1));
        }
        if let Event::Post { qp, wr } = ev {
            if let Some(decl) = prog.qps.iter().find(|d| d.qp == *qp) {
                if decl.local_machine == machine {
                    for sge in wr.sgl.as_slice() {
                        if sge.mr.0 == mr {
                            required = required.max(sge.offset + sge.len);
                        }
                    }
                }
            }
        }
    }
    let Some(decl) = prog.mrs.iter_mut().find(|d| d.machine == machine && d.mr.0 == mr) else {
        return;
    };
    if required > decl.len {
        // Compaction would *grow* the region (slots wider than the
        // original spacing) — not a valid shrink; leave untouched.
        return;
    }
    decl.len = required;
    for ev in prog.events.iter_mut() {
        let remap = match ev {
            Event::Post { qp, wr } if wr.kind.is_one_sided() => {
                let remote_ok = prog
                    .qps
                    .iter()
                    .find(|d| d.qp == *qp)
                    .is_some_and(|d| d.remote_machine == machine);
                match wr.remote {
                    Some((rk, off)) if remote_ok && rk.0 as u32 == mr => Some(off),
                    _ => None,
                }
            }
            _ => None,
        };
        if let (Some(off), Event::Post { wr, .. }) = (remap, ev) {
            if let Some((rk, _)) = wr.remote {
                wr.remote = Some((rk, rank[&off] * slot));
            }
        }
    }
}

/// If `ev` is a one-sided post whose remote side is `(machine, mr)`,
/// return its remote `(offset, payload)`.
fn remote_access(prog: &VerbProgram, ev: &Event, machine: usize, mr: u32) -> Option<(u64, u64)> {
    let Event::Post { qp, wr } = ev else { return None };
    if !wr.kind.is_one_sided() {
        return None;
    }
    let decl = prog.qps.iter().find(|d| d.qp == *qp)?;
    match wr.remote {
        Some((rk, off)) if decl.remote_machine == machine && rk.0 as u32 == mr => {
            Some((off, wr.payload_bytes()))
        }
        _ => None,
    }
}

fn consolidate(
    prog: &mut VerbProgram,
    machine: usize,
    mr: u32,
    block_base: u64,
    block_bytes: u64,
    small_write_max: u64,
) {
    if block_bytes == 0 {
        return;
    }
    // The group: every small write landing wholly inside the flagged
    // block — the same predicate the W203 rule clusters by.
    let mut group: Vec<usize> = Vec::new();
    for (i, ev) in prog.events.iter().enumerate() {
        let Event::Post { qp, wr } = ev else { continue };
        if !matches!(wr.kind, VerbKind::Write) {
            continue;
        }
        let Some(decl) = prog.qps.iter().find(|d| d.qp == *qp) else { continue };
        let Some((rk, off)) = wr.remote else { continue };
        if decl.remote_machine != machine || rk.0 as u32 != mr {
            continue;
        }
        let payload = wr.payload_bytes();
        let last = off + payload.max(1) - 1;
        if payload <= small_write_max
            && off / block_bytes == last / block_bytes
            && off / block_bytes * block_bytes == block_base
        {
            group.push(i);
        }
    }
    if group.len() < 2 {
        return;
    }
    let first = group[0];
    let Event::Post { qp: first_qp, wr: first_wr } = prog.events[first].clone() else { return };
    let Some(qp_decl) = prog.qps.iter().find(|d| d.qp == first_qp).copied() else { return };
    let signaled = group.iter().any(|&i| wr_signaled(&prog.events[i]));
    // Synthesize the ConsolidationBuffer: a fresh shadow MR on the
    // posting machine, sized to one block, on the port's socket.
    let shadow = prog
        .mrs
        .iter()
        .filter(|d| d.machine == qp_decl.local_machine)
        .map(|d| d.mr.0 + 1)
        .max()
        .unwrap_or(0);
    prog.mrs.push(MrDecl {
        machine: qp_decl.local_machine,
        mr: MrId(shadow),
        socket: qp_decl.local_port_socket,
        len: block_bytes,
    });
    let remote_len = prog.mrs.iter().find(|d| d.machine == machine && d.mr.0 == mr).map(|d| d.len);
    let flush_len = remote_len.map_or(block_bytes, |l| block_bytes.min(l - block_base.min(l)));
    prog.events[first] = Event::Post {
        qp: first_qp,
        wr: WorkRequest {
            wr_id: first_wr.wr_id,
            kind: VerbKind::Write,
            sgl: Sge::new(MrId(shadow), 0, flush_len).into(),
            remote: Some((RKey(mr as u64), block_base)),
            signaled,
        },
    };
    for &i in group[1..].iter().rev() {
        prog.events.remove(i);
    }
}

/// Result of driving a program to its lint fixpoint.
#[derive(Clone, Debug)]
pub struct FixOutcome {
    /// The rewritten program at the fixpoint.
    pub program: VerbProgram,
    /// Lint/apply rounds taken (0 when already clean).
    pub rounds: usize,
    /// Every fix applied, in application order.
    pub applied: Vec<Fix>,
    /// Diagnostics remaining at the fixpoint (warnings only if the
    /// engine converged; pre-existing errors are never auto-fixed).
    pub remaining: Vec<Diagnostic>,
    /// True iff every applied fix claims byte-identical results.
    pub preserves_results: bool,
}

/// Apply fixes and re-lint until no fixable warning remains (or the
/// round cap trips). Index-stable fixes are applied together per round;
/// index-shifting fixes one at a time, so recorded event indices never
/// dangle.
pub fn fix_to_fixpoint(prog: &VerbProgram, caps: &DeviceCaps, opts: &LintOptions) -> FixOutcome {
    let mut program = prog.clone();
    let mut applied: Vec<Fix> = Vec::new();
    let mut rounds = 0usize;
    loop {
        let diags = analyze_with(&program, caps, opts);
        let fixes: Vec<Fix> = diags.iter().filter_map(|d| d.fix.clone()).collect();
        if fixes.is_empty() || rounds >= 32 {
            let preserves = applied.iter().all(Fix::preserves_results);
            return FixOutcome {
                program,
                rounds,
                applied,
                remaining: diags,
                preserves_results: preserves,
            };
        }
        rounds += 1;
        let mut stable: Vec<Fix> = fixes.iter().filter(|f| f.index_stable()).cloned().collect();
        stable.dedup();
        let round: Vec<Fix> = if stable.is_empty() { vec![fixes[0].clone()] } else { stable };
        let before = applied.len();
        for f in round {
            if !applied.contains(&f) || !f.index_stable() {
                apply_fix(&mut program, &f);
                applied.push(f);
            }
        }
        if applied.len() == before {
            // Every proposed fix was already applied and changed
            // nothing — the program is as fixed as it gets.
            let preserves = applied.iter().all(Fix::preserves_results);
            return FixOutcome {
                program,
                rounds,
                applied,
                remaining: diags,
                preserves_results: preserves,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use rnicsim::{QpNum, WorkRequest};

    fn caps() -> DeviceCaps {
        DeviceCaps::default()
    }

    /// Two machines, one QP; client MR 0 on machine 0, server MR 0 on
    /// machine 1, both ports on socket 1.
    fn skeleton(local_len: u64, remote_len: u64) -> VerbProgram {
        let mut p = VerbProgram::new();
        p.mr(0, MrId(0), 1, local_len).mr(1, MrId(0), 1, remote_len);
        p.qp(QpNum(0), 0, 1, 1, 1);
        p
    }

    #[test]
    fn split_sgl_fix_reaches_clean_fixpoint() {
        let caps = caps();
        let mut p = skeleton(1 << 20, 1 << 20);
        let n = caps.max_sge + 3;
        let sges: Vec<Sge> = (0..n).map(|i| Sge::new(MrId(0), i as u64 * 64, 64)).collect();
        p.post(
            QpNum(0),
            WorkRequest {
                wr_id: rnicsim::WrId(0),
                kind: VerbKind::Write,
                sgl: sges.into(),
                remote: Some((RKey(0), 0)),
                signaled: true,
            },
        );
        p.poll(QpNum(0), 1);
        let out = fix_to_fixpoint(&p, &caps, &LintOptions::default());
        assert_eq!(out.applied, vec![Fix::SplitSgl { event: 0, max_sge: caps.max_sge }]);
        assert!(out.remaining.is_empty(), "fixpoint is clean");
        assert!(out.preserves_results, "an SGL split is byte-identical");
        // Two posts now, the second carrying the advanced remote offset
        // and the original signal.
        let posts: Vec<_> = out
            .program
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Post { wr, .. } => Some(wr.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(posts.len(), 2);
        assert_eq!(posts[0].sgl.as_slice().len(), caps.max_sge);
        assert_eq!(posts[1].sgl.as_slice().len(), 3);
        assert!(!posts[0].signaled && posts[1].signaled);
        assert_eq!(posts[1].remote.unwrap().1, caps.max_sge as u64 * 64);
    }

    #[test]
    fn move_to_socket_fix_is_idempotent_and_clean() {
        let caps = caps();
        let mut p = skeleton(4096, 4096);
        // Local MR on socket 0, port on socket 1 → W204.
        p.mrs[0].socket = 0;
        p.post(QpNum(0), WorkRequest::write(0, Sge::new(MrId(0), 0, 64), RKey(0), 0));
        p.poll(QpNum(0), 1);
        let out = fix_to_fixpoint(&p, &caps, &LintOptions::default());
        assert!(out.remaining.is_empty());
        assert!(out.preserves_results);
        assert_eq!(out.applied, vec![Fix::MoveToSocket { machine: 0, mr: 0, socket: 1 }]);
        assert_eq!(out.program.mrs()[0].socket, 1);
    }

    #[test]
    fn relayout_shrinks_the_region_below_mtt_coverage() {
        let caps = caps();
        let opts = LintOptions::default();
        let mut p = skeleton(4096, 4 << 30);
        // 16 random-page writes over a 4 GB region: classic W202.
        let pages = [977u64, 31, 407, 123, 851, 5, 660, 289, 512, 737, 91, 333, 208, 944, 66, 480];
        for (i, pg) in pages.iter().enumerate() {
            p.post(
                QpNum(0),
                WorkRequest::write(i as u64, Sge::new(MrId(0), 0, 64), RKey(0), pg * 1024 * 1024),
            );
            p.poll(QpNum(0), 1);
        }
        let diags = analyze_with(&p, &caps, &opts);
        assert!(diags.iter().any(|d| d.code == Code::W202), "premise: W202 fires");
        let out = fix_to_fixpoint(&p, &caps, &opts);
        assert!(out.remaining.is_empty(), "{:?}", out.remaining);
        assert!(!out.preserves_results, "relayout moves bytes by design");
        let fixed_len = out.program.find_mr(1, MrId(0)).unwrap().len;
        assert!(
            fixed_len <= caps.mtt_coverage_bytes(),
            "compacted footprint fits the MTT cache ({fixed_len})"
        );
        // Offsets are dense slots now, order-preserving by original offset.
        let mut offs: Vec<u64> = out
            .program
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Post { wr, .. } => wr.remote.map(|(_, o)| o),
                _ => None,
            })
            .collect();
        offs.sort_unstable();
        let slot = offs[1] - offs[0];
        assert!(offs.iter().enumerate().all(|(i, &o)| o == i as u64 * slot));
    }

    #[test]
    fn consolidate_replaces_the_group_with_one_block_flush() {
        let caps = caps();
        let opts = LintOptions::default();
        let mut p = skeleton(1 << 20, 1 << 20);
        // θ small writes into block 0 → W203.
        for i in 0..opts.theta {
            p.post(
                QpNum(0),
                WorkRequest::write(
                    i as u64,
                    Sge::new(MrId(0), i as u64 * 64, 64),
                    RKey(0),
                    i as u64 * 64,
                ),
            );
        }
        p.poll(QpNum(0), opts.theta);
        let out = fix_to_fixpoint(&p, &caps, &opts);
        assert!(out.remaining.is_empty(), "{:?}", out.remaining);
        assert!(!out.preserves_results);
        assert!(matches!(out.applied[..], [Fix::Consolidate { block_base: 0, .. }]));
        let posts: Vec<_> = out
            .program
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Post { wr, .. } => Some(wr.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(posts.len(), 1, "the group collapsed to one flush");
        let flush = &posts[0];
        assert!(flush.signaled);
        assert_eq!(flush.payload_bytes(), opts.block_bytes);
        assert_eq!(flush.remote.unwrap().1, 0);
        // The flush gathers from the synthesized shadow MR on machine 0.
        let shadow = flush.sgl.as_slice()[0].mr;
        let decl = out.program.find_mr(0, shadow).expect("shadow MR declared");
        assert_eq!(decl.len, opts.block_bytes);
        assert_eq!(decl.socket, 1, "shadow lives on the port's socket");
    }
}
