//! Byte-interval footprints: the lattice the race analysis runs over.
//!
//! The race rules (W102/W103/E005) reason about *which bytes* of which
//! MR each outstanding one-sided verb touches, not just which QP issued
//! it. Two building blocks live here:
//!
//! * [`IntervalSet`] — a sorted, coalesced set of half-open byte ranges
//!   `[start, end)`. This is the join-semilattice element: inserting a
//!   span is the lattice join, and overlap queries decide conflicts.
//!   The dynamic oracle (`cluster::oracle`) reuses it to expose the
//!   union of in-flight DMA bytes per MR.
//! * [`FootprintIndex`] — the static analyzer's map from
//!   `(machine, MR)` to the outstanding [`OpSpan`]s targeting it, with
//!   deterministic conflict enumeration and per-QP retirement mirroring
//!   the poll rules (same-QP ordered-channel edges are implicit: a QP's
//!   own spans are never conflicts).

use rnicsim::{MrId, QpNum, WrId};

/// A sorted set of disjoint half-open byte ranges `[start, end)`.
///
/// Insertion coalesces adjacent and overlapping ranges, so the set is
/// always the minimal representation of the covered bytes — the
/// canonical form of a lattice element.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSet {
    spans: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// The empty set (lattice bottom).
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Insert `[start, end)`, coalescing with any ranges it touches.
    /// Empty ranges are ignored.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // First span that could touch the new one (its end >= start).
        let lo = self.spans.partition_point(|&(_, e)| e < start);
        // First span strictly beyond the new one (its start > end).
        let hi = self.spans.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.spans.insert(lo, (start, end));
            return;
        }
        let merged = (start.min(self.spans[lo].0), end.max(self.spans[hi - 1].1));
        self.spans.splice(lo..hi, [merged]);
    }

    /// Does `[start, end)` intersect any range in the set?
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let lo = self.spans.partition_point(|&(_, e)| e <= start);
        self.spans.get(lo).is_some_and(|&(s, _)| s < end)
    }

    /// Total number of bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.spans.iter().map(|&(s, e)| e - s).sum()
    }

    /// The disjoint sorted ranges.
    pub fn spans(&self) -> &[(u64, u64)] {
        &self.spans
    }

    /// True when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// One outstanding one-sided operation's remote footprint, as tracked
/// by the static analyzer between its posting event and the poll that
/// retires it.
#[derive(Clone, Debug)]
pub struct OpSpan {
    /// First remote byte touched.
    pub start: u64,
    /// One past the last remote byte touched.
    pub end: u64,
    /// QP the op was posted on.
    pub qp: QpNum,
    /// The op's work-request id.
    pub wr_id: WrId,
    /// Index of the posting event in the program.
    pub event: usize,
    /// Does the op write the remote bytes (Write/CAS/FAA)?
    pub writes: bool,
    /// Is the op an atomic (CAS/FAA)?
    pub atomic: bool,
    /// Verb name, for diagnostics.
    pub kind_name: &'static str,
    /// Value of the global poll counter when the op was posted — two
    /// ops with equal counters have provably no poll between them.
    pub polls_at_post: u64,
}

/// Outstanding footprints keyed by `(machine, MR)`.
///
/// Spans are stored in posting order per key, so conflict enumeration
/// is deterministic (earlier post first) and per-QP retirement can cut
/// by event index.
#[derive(Clone, Debug, Default)]
pub struct FootprintIndex {
    map: std::collections::BTreeMap<(usize, u32), Vec<OpSpan>>,
}

impl FootprintIndex {
    /// An empty index.
    pub fn new() -> Self {
        FootprintIndex::default()
    }

    /// Record `span` as outstanding against `mr` on `machine`.
    pub fn insert(&mut self, machine: usize, mr: MrId, span: OpSpan) {
        self.map.entry((machine, mr.0)).or_default().push(span);
    }

    /// Outstanding spans on other QPs that byte-overlap
    /// `[start, end)` of `mr` on `machine`, in posting order. Same-QP
    /// spans are excluded: the QP's ordered channel serializes them.
    pub fn conflicts(
        &self,
        machine: usize,
        mr: MrId,
        start: u64,
        end: u64,
        qp: QpNum,
    ) -> impl Iterator<Item = &OpSpan> {
        self.map
            .get(&(machine, mr.0))
            .into_iter()
            .flatten()
            .filter(move |s| s.qp != qp && s.start < end && start < s.end)
    }

    /// Retire every span `qp` posted at or before event `last_event` —
    /// called when a poll's completion retires those ops (RC ordering:
    /// a polled CQE retires all earlier WRs on the same QP).
    pub fn retire(&mut self, qp: QpNum, last_event: usize) {
        for spans in self.map.values_mut() {
            spans.retain(|s| s.qp != qp || s.event > last_event);
        }
        self.map.retain(|_, spans| !spans.is_empty());
    }

    /// Union of outstanding bytes per `(machine, MR)` key — the lattice
    /// element the analysis has joined so far.
    pub fn coverage(&self, machine: usize, mr: MrId) -> IntervalSet {
        let mut set = IntervalSet::new();
        for s in self.map.get(&(machine, mr.0)).into_iter().flatten() {
            set.insert(s.start, s.end);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_set_coalesces_and_sorts() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        s.insert(0, 5);
        assert_eq!(s.spans(), &[(0, 5), (10, 20), (30, 40)]);
        // Bridge the middle gap: touches both neighbours.
        s.insert(18, 32);
        assert_eq!(s.spans(), &[(0, 5), (10, 40)]);
        // Adjacent (end == start) coalesces too.
        s.insert(5, 10);
        assert_eq!(s.spans(), &[(0, 40)]);
        assert_eq!(s.covered_bytes(), 40);
    }

    #[test]
    fn interval_set_overlap_queries() {
        let mut s = IntervalSet::new();
        s.insert(16, 32);
        s.insert(64, 128);
        assert!(s.overlaps(0, 17));
        assert!(s.overlaps(31, 40));
        assert!(s.overlaps(100, 101));
        assert!(!s.overlaps(0, 16), "half-open: end is exclusive");
        assert!(!s.overlaps(32, 64), "gap between spans");
        assert!(!s.overlaps(128, 256));
        assert!(!s.overlaps(20, 20), "empty query range");
    }

    #[test]
    fn interval_set_ignores_empty_inserts() {
        let mut s = IntervalSet::new();
        s.insert(8, 8);
        assert!(s.is_empty());
    }

    fn span(qp: u32, event: usize, start: u64, end: u64, writes: bool) -> OpSpan {
        OpSpan {
            start,
            end,
            qp: QpNum(qp),
            wr_id: WrId(event as u64),
            event,
            writes,
            atomic: false,
            kind_name: "Write",
            polls_at_post: 0,
        }
    }

    #[test]
    fn index_conflicts_exclude_same_qp_and_disjoint() {
        let mut idx = FootprintIndex::new();
        idx.insert(1, MrId(0), span(0, 0, 0, 64, true));
        idx.insert(1, MrId(0), span(1, 1, 128, 192, true));
        // Same QP: ordered channel, no conflict.
        assert_eq!(idx.conflicts(1, MrId(0), 32, 96, QpNum(0)).count(), 0);
        // Other QP but disjoint bytes: no conflict.
        assert_eq!(idx.conflicts(1, MrId(0), 64, 128, QpNum(2)).count(), 0);
        // Other QP, overlapping: one conflict, the earlier post.
        let hits: Vec<_> = idx.conflicts(1, MrId(0), 32, 96, QpNum(2)).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event, 0);
        // Other MR entirely.
        assert_eq!(idx.conflicts(1, MrId(1), 0, 256, QpNum(2)).count(), 0);
    }

    #[test]
    fn index_retire_cuts_by_qp_and_event() {
        let mut idx = FootprintIndex::new();
        idx.insert(0, MrId(3), span(0, 0, 0, 64, true));
        idx.insert(0, MrId(3), span(0, 2, 64, 128, true));
        idx.insert(0, MrId(3), span(1, 1, 256, 320, true));
        idx.retire(QpNum(0), 0);
        // QP 0's event-0 span is gone; its event-2 span and QP 1 remain.
        assert_eq!(idx.conflicts(0, MrId(3), 0, 64, QpNum(9)).count(), 0);
        assert_eq!(idx.conflicts(0, MrId(3), 64, 128, QpNum(9)).count(), 1);
        assert_eq!(idx.conflicts(0, MrId(3), 256, 320, QpNum(9)).count(), 1);
        assert_eq!(idx.coverage(0, MrId(3)).covered_bytes(), 128);
    }
}
