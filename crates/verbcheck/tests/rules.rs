//! Fixture tests: every rule fires on its positive fixture and stays
//! silent on the matching negative fixture.

use rnicsim::{DeviceCaps, MrId, QpNum, RKey, Sge, VerbKind, WorkRequest, WrId};
use verbcheck::{analyze, analyze_with, has_errors, Code, LintOptions, VerbProgram};

/// A two-machine program skeleton: 4 KB local MR 0 and remote MR 1, both
/// on socket 1, one QP with both ports on socket 1.
fn skeleton() -> VerbProgram {
    let mut p = VerbProgram::new();
    p.mr(0, MrId(0), 1, 4096);
    p.mr(1, MrId(1), 1, 4096);
    p.qp(QpNum(0), 0, 1, 1, 1);
    p
}

fn codes(p: &VerbProgram) -> Vec<Code> {
    analyze(p, &DeviceCaps::default()).iter().map(|d| d.code).collect()
}

fn atomic(kind: VerbKind, local: Sge, rkey: RKey, off: u64) -> WorkRequest {
    WorkRequest {
        wr_id: WrId(9),
        kind,
        sgl: local.into(),
        remote: Some((rkey, off)),
        signaled: true,
    }
}

// ---------------------------------------------------------------- E001

#[test]
fn e001_fires_on_remote_out_of_bounds() {
    let mut p = skeleton();
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 4090));
    assert_eq!(codes(&p), vec![Code::E001]);
    assert!(has_errors(&analyze(&p, &DeviceCaps::default())));
}

#[test]
fn e001_fires_on_bad_rkey_and_local_oob_and_unknown_mr() {
    let mut p = skeleton();
    // Bad rkey: no MR 5 on machine 1.
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(5), 0));
    // Local SGE out of bounds.
    p.post(QpNum(0), WorkRequest::write(2, Sge::new(MrId(0), 4000, 200), RKey(1), 0));
    // Local SGE on an unregistered MR.
    p.post(QpNum(0), WorkRequest::write(3, Sge::new(MrId(42), 0, 8), RKey(1), 0));
    // Offset overflow must not wrap around.
    p.post(QpNum(0), WorkRequest::write(4, Sge::new(MrId(0), u64::MAX, 16), RKey(1), 0));
    assert_eq!(codes(&p), vec![Code::E001; 4]);
}

#[test]
fn e001_silent_in_bounds() {
    let mut p = skeleton();
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 4032, 64), RKey(1), 4032));
    p.poll(QpNum(0), 1);
    assert!(codes(&p).is_empty());
}

// ---------------------------------------------------------------- E002

#[test]
fn e002_fires_on_misaligned_atomic() {
    let mut p = skeleton();
    p.post(QpNum(0), atomic(VerbKind::FetchAdd { delta: 1 }, Sge::new(MrId(0), 0, 8), RKey(1), 12));
    assert_eq!(codes(&p), vec![Code::E002]);
}

#[test]
fn e002_fires_on_wrong_sgl_size() {
    let mut p = skeleton();
    p.post(
        QpNum(0),
        atomic(
            VerbKind::CompareSwap { expected: 0, desired: 1 },
            Sge::new(MrId(0), 0, 16),
            RKey(1),
            8,
        ),
    );
    assert_eq!(codes(&p), vec![Code::E002]);
}

#[test]
fn e002_silent_on_aligned_8_byte_atomic() {
    let mut p = skeleton();
    p.post(QpNum(0), atomic(VerbKind::FetchAdd { delta: 1 }, Sge::new(MrId(0), 0, 8), RKey(1), 16));
    p.poll(QpNum(0), 1);
    assert!(codes(&p).is_empty());
}

// ---------------------------------------------------------------- E003

fn tiny_caps() -> DeviceCaps {
    DeviceCaps { sq_depth: 4, cq_depth: 4, ..DeviceCaps::default() }
}

// Reads, not writes, so the queue-pressure fixtures can't trip W203.
fn unsignaled_reads(p: &mut VerbProgram, n: usize) {
    for i in 0..n {
        let mut w = WorkRequest::read(i as u64, Sge::new(MrId(0), 0, 8), RKey(1), 0);
        w.signaled = false;
        p.post(QpNum(0), w);
    }
}

#[test]
fn e003_fires_when_unsignaled_run_reaches_sq_depth() {
    let mut p = skeleton();
    unsignaled_reads(&mut p, 4);
    let diags = analyze(&p, &tiny_caps());
    let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::E003]);
    // Reported once at the WR that crosses the threshold, not per WR.
    assert_eq!(diags[0].span.event, 3);
}

#[test]
fn e003_silent_when_a_signaled_wr_breaks_the_run() {
    let mut p = skeleton();
    unsignaled_reads(&mut p, 3);
    p.post(QpNum(0), WorkRequest::read(99, Sge::new(MrId(0), 0, 8), RKey(1), 0));
    p.poll(QpNum(0), 1);
    unsignaled_reads(&mut p, 3);
    p.post(QpNum(0), WorkRequest::read(100, Sge::new(MrId(0), 0, 8), RKey(1), 0));
    p.poll(QpNum(0), 1);
    assert!(analyze(&p, &tiny_caps()).is_empty());
}

// ---------------------------------------------------------------- E004

#[test]
fn e004_fires_when_signaled_completions_exceed_cq_depth() {
    let mut p = skeleton();
    for i in 0..5u64 {
        p.post(QpNum(0), WorkRequest::read(i, Sge::new(MrId(0), 0, 8), RKey(1), 0));
    }
    p.poll(QpNum(0), 5);
    let diags = analyze(&p, &tiny_caps());
    let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::E004]);
    assert_eq!(diags[0].span.event, 4, "the fifth signaled post overflows a 4-deep CQ");
}

#[test]
fn e004_silent_when_polls_keep_up() {
    let mut p = skeleton();
    for round in 0..3 {
        for i in 0..4u64 {
            p.post(QpNum(0), WorkRequest::read(round * 4 + i, Sge::new(MrId(0), 0, 8), RKey(1), 0));
        }
        p.poll(QpNum(0), 4);
    }
    assert!(analyze(&p, &tiny_caps()).is_empty());
}

// ----------------------------------------------- W102/W103/E005 races

/// Skeleton with a second QP to the same remote machine.
fn two_qp_skeleton() -> VerbProgram {
    let mut p = skeleton();
    p.qp(QpNum(1), 0, 1, 1, 1);
    p
}

#[test]
fn w103_fires_on_unordered_cross_qp_write_read_overlap() {
    let mut p = two_qp_skeleton();
    let w = p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p.post(QpNum(1), WorkRequest::read(2, Sge::new(MrId(0), 128, 64), RKey(1), 32));
    let diags = analyze(&p, &DeviceCaps::default());
    let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::W103]);
    // The diagnostic names the earlier write as the related program
    // point and the exact overlapping bytes: [0,64) ∩ [32,96) = [32,64).
    assert_eq!(diags[0].related.as_ref().unwrap().0.event, w);
    assert!(diags[0].message.contains("[0x20, 0x40)"), "{}", diags[0].message);
    assert!(!has_errors(&diags), "read-write races are warnings: they may be intentional");
}

#[test]
fn e005_fires_on_same_window_write_write_and_write_atomic() {
    // Two writes overlapping on [48,64) with no poll anywhere between
    // the posts: provably unordered, an error.
    let mut p = two_qp_skeleton();
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p.post(QpNum(1), WorkRequest::write(2, Sge::new(MrId(0), 128, 64), RKey(1), 48));
    let diags = analyze(&p, &DeviceCaps::default());
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec![Code::E005]);
    assert!(diags[0].message.contains("[0x30, 0x40)"), "{}", diags[0].message);
    assert!(has_errors(&diags), "same-window write-write is provably racy");

    // A non-atomic write racing an atomic in the same window is just as
    // undefined for the plain write's bytes.
    let mut p2 = two_qp_skeleton();
    p2.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p2.post(
        QpNum(1),
        atomic(VerbKind::FetchAdd { delta: 1 }, Sge::new(MrId(0), 128, 8), RKey(1), 32),
    );
    assert_eq!(codes(&p2), vec![Code::E005]);
}

#[test]
fn atomic_atomic_same_window_overlap_is_only_w102() {
    // Two atomics on the same word: the RNIC serializes them (§III-E),
    // so the overlap is not *undefined* — but their order is still
    // unobserved, which is worth a warning.
    let mut p = two_qp_skeleton();
    p.post(QpNum(0), atomic(VerbKind::FetchAdd { delta: 1 }, Sge::new(MrId(0), 0, 8), RKey(1), 32));
    p.post(
        QpNum(1),
        atomic(
            VerbKind::CompareSwap { expected: 0, desired: 1 },
            Sge::new(MrId(0), 8, 8),
            RKey(1),
            32,
        ),
    );
    let diags = analyze(&p, &DeviceCaps::default());
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec![Code::W102]);
    assert!(!has_errors(&diags));
}

#[test]
fn w102_fires_when_a_poll_leaves_the_earlier_write_unretired() {
    // QP 0 posts two writes; the poll retires only the first. QP 1 then
    // overlaps the *second* — a poll intervened (different windows, so
    // not provably racy) but that poll did not retire the conflicting
    // op: a potential race, W102.
    let mut p = two_qp_skeleton();
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    let w2 = p.post(QpNum(0), WorkRequest::write(2, Sge::new(MrId(0), 64, 64), RKey(1), 64));
    p.poll(QpNum(0), 1);
    p.post(QpNum(1), WorkRequest::write(3, Sge::new(MrId(0), 128, 64), RKey(1), 96));
    p.poll(QpNum(0), 1);
    p.poll(QpNum(1), 1);
    let diags = analyze(&p, &DeviceCaps::default());
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec![Code::W102]);
    assert_eq!(diags[0].related.as_ref().unwrap().0.event, w2);
    assert!(diags[0].message.contains("[0x60, 0x80)"), "{}", diags[0].message);
    assert!(!has_errors(&diags));
}

#[test]
fn every_conflicting_pair_is_reported() {
    // A third write overlapping two distinct outstanding footprints
    // draws one diagnostic per pair — the lattice keeps every span, not
    // just the first hit.
    let mut p = two_qp_skeleton();
    p.qp(QpNum(2), 0, 1, 1, 1);
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p.post(QpNum(1), WorkRequest::write(2, Sge::new(MrId(0), 128, 64), RKey(1), 512));
    p.post(QpNum(2), WorkRequest::write(3, Sge::new(MrId(0), 256, 64), RKey(1), 32));
    let diags = analyze(&p, &DeviceCaps::default());
    // Pair (0,2): [0,64) ∩ [32,96); pair (1,2) is disjoint (512..576).
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec![Code::E005]);
    // Now overlap both: a fourth write covering [0,576).
    let mut p = two_qp_skeleton();
    p.qp(QpNum(2), 0, 1, 1, 1);
    let a = p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    let b = p.post(QpNum(1), WorkRequest::write(2, Sge::new(MrId(0), 128, 64), RKey(1), 512));
    p.post(QpNum(2), WorkRequest::write(3, Sge::new(MrId(0), 256, 1024), RKey(1), 0));
    let diags = analyze(&p, &DeviceCaps::default());
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec![Code::E005, Code::E005]);
    let related: Vec<usize> = diags.iter().map(|d| d.related.as_ref().unwrap().0.event).collect();
    assert_eq!(related, vec![a, b], "one report per conflicting pair, in posting order");
}

#[test]
fn race_silent_when_a_poll_orders_the_ops() {
    let mut p = two_qp_skeleton();
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p.poll(QpNum(0), 1); // happens-before edge
    p.post(QpNum(1), WorkRequest::read(2, Sge::new(MrId(0), 128, 64), RKey(1), 32));
    p.poll(QpNum(1), 1);
    assert!(codes(&p).is_empty());
}

#[test]
fn race_silent_on_disjoint_ranges_and_read_read() {
    let mut p = two_qp_skeleton();
    // Disjoint ranges: byte-precise, so even adjacent writes are fine.
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p.post(QpNum(1), WorkRequest::write(2, Sge::new(MrId(0), 128, 64), RKey(1), 64));
    p.poll(QpNum(0), 1);
    p.poll(QpNum(1), 1);
    // Read/read overlap carries no hazard.
    p.post(QpNum(0), WorkRequest::read(3, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p.post(QpNum(1), WorkRequest::read(4, Sge::new(MrId(0), 128, 64), RKey(1), 0));
    assert!(codes(&p).is_empty());
}

// ---------------------------------------------------------------- W201

#[test]
fn w201_fires_on_oversized_sgl() {
    let caps = DeviceCaps { max_sge: 2, ..DeviceCaps::default() };
    let mut p = skeleton();
    let sgl: Vec<Sge> = (0..3).map(|i| Sge::new(MrId(0), i * 64, 64)).collect();
    p.post(
        QpNum(0),
        WorkRequest {
            wr_id: WrId(1),
            kind: VerbKind::Write,
            sgl: sgl.into(),
            remote: Some((RKey(1), 0)),
            signaled: true,
        },
    );
    let diags = analyze(&p, &caps);
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec![Code::W201]);
}

#[test]
fn w201_silent_at_the_limit() {
    let caps = DeviceCaps { max_sge: 2, ..DeviceCaps::default() };
    let mut p = skeleton();
    let sgl: Vec<Sge> = (0..2).map(|i| Sge::new(MrId(0), i * 64, 64)).collect();
    p.post(
        QpNum(0),
        WorkRequest {
            wr_id: WrId(1),
            kind: VerbKind::Write,
            sgl: sgl.into(),
            remote: Some((RKey(1), 0)),
            signaled: true,
        },
    );
    p.poll(QpNum(0), 1);
    assert!(analyze(&p, &caps).is_empty());
}

// ---------------------------------------------------------------- W202

/// Deterministic page scramble for the thrash fixtures.
fn scrambled_page(i: u64, pages: u64) -> u64 {
    (i.wrapping_mul(2654435761)) % pages
}

#[test]
fn w202_fires_on_random_stride_over_a_thrashing_region() {
    let caps = DeviceCaps::default(); // 4 MB coverage
    let mut p = VerbProgram::new();
    p.mr(0, MrId(0), 1, 4096);
    p.mr(1, MrId(1), 1, 64 << 20); // 64 MB >> 4 MB MTT coverage
    p.qp(QpNum(0), 0, 1, 1, 1);
    let pages = (64 << 20) / caps.page_bytes;
    for i in 0..32u64 {
        let off = scrambled_page(i, pages) * caps.page_bytes;
        p.post(QpNum(0), WorkRequest::read(i, Sge::new(MrId(0), 0, 32), RKey(1), off));
        p.poll(QpNum(0), 1);
    }
    let diags = analyze(&p, &caps);
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec![Code::W202]);
}

#[test]
fn w202_silent_on_sequential_stride_and_on_small_regions() {
    let caps = DeviceCaps::default();
    // Sequential over the same huge region: one translation per page,
    // prefetch-friendly — no lint.
    let mut p = VerbProgram::new();
    p.mr(0, MrId(0), 1, 4096);
    p.mr(1, MrId(1), 1, 64 << 20);
    p.qp(QpNum(0), 0, 1, 1, 1);
    for i in 0..32u64 {
        p.post(QpNum(0), WorkRequest::read(i, Sge::new(MrId(0), 0, 32), RKey(1), i * 1024));
        p.poll(QpNum(0), 1);
    }
    assert!(analyze(&p, &caps).is_empty());

    // Random over a region that fits MTT coverage (Fig 6d): no lint.
    let mut p = VerbProgram::new();
    p.mr(0, MrId(0), 1, 4096);
    p.mr(1, MrId(1), 1, 2 << 20); // 2 MB < 4 MB coverage
    p.qp(QpNum(0), 0, 1, 1, 1);
    let pages = (2 << 20) / caps.page_bytes;
    for i in 0..32u64 {
        let off = scrambled_page(i, pages) * caps.page_bytes;
        p.post(QpNum(0), WorkRequest::read(i, Sge::new(MrId(0), 0, 32), RKey(1), off));
        p.poll(QpNum(0), 1);
    }
    assert!(analyze(&p, &caps).is_empty());
}

// ---------------------------------------------------------------- W203

#[test]
fn w203_fires_on_theta_small_writes_to_one_block() {
    let opts = LintOptions { theta: 4, ..LintOptions::default() };
    let mut p = skeleton();
    for i in 0..4u64 {
        p.post(QpNum(0), WorkRequest::write(i, Sge::new(MrId(0), 0, 64), RKey(1), i * 128));
        p.poll(QpNum(0), 1);
    }
    let diags = analyze_with(&p, &DeviceCaps::default(), &opts);
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec![Code::W203]);
    assert_eq!(diags[0].span.event, 6, "fires at the θ-th write, once");
}

#[test]
fn w203_silent_on_spread_writes_and_large_writes() {
    let opts = LintOptions { theta: 4, ..LintOptions::default() };
    // Same count of small writes, spread across blocks (remote MR large
    // enough to hold four 2 KB blocks).
    let mut p = VerbProgram::new();
    p.mr(0, MrId(0), 1, 4096);
    p.mr(1, MrId(1), 1, 16384);
    p.qp(QpNum(0), 0, 1, 1, 1);
    for i in 0..4u64 {
        p.post(QpNum(0), WorkRequest::write(i, Sge::new(MrId(0), 0, 64), RKey(1), i * 2048));
        p.poll(QpNum(0), 1);
    }
    assert!(analyze_with(&p, &DeviceCaps::default(), &opts).is_empty());
    // Large (already-consolidated) writes to one block.
    let mut p = skeleton();
    for i in 0..4u64 {
        p.post(QpNum(0), WorkRequest::write(i, Sge::new(MrId(0), 0, 1024), RKey(1), 0));
        p.poll(QpNum(0), 1);
    }
    assert!(analyze_with(&p, &DeviceCaps::default(), &opts).is_empty());
}

// ---------------------------------------------------------------- W204

#[test]
fn w204_fires_on_local_and_remote_misplacement() {
    // Local buffer on socket 0, port on socket 1.
    let mut p = VerbProgram::new();
    p.mr(0, MrId(0), 0, 4096);
    p.mr(1, MrId(1), 1, 4096);
    p.qp(QpNum(0), 0, 1, 1, 1);
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p.poll(QpNum(0), 1);
    assert_eq!(codes(&p), vec![Code::W204]);

    // Remote region on socket 0, remote port on socket 1.
    let mut p = VerbProgram::new();
    p.mr(0, MrId(0), 1, 4096);
    p.mr(1, MrId(1), 0, 4096);
    p.qp(QpNum(0), 0, 1, 1, 1);
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p.poll(QpNum(0), 1);
    assert_eq!(codes(&p), vec![Code::W204]);
}

#[test]
fn w204_silent_on_affine_placement() {
    let mut p = skeleton(); // everything on socket 1
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
    p.poll(QpNum(0), 1);
    assert!(codes(&p).is_empty());
}

// ------------------------------------------------- cross-rule behavior

#[test]
fn multiple_rules_fire_together_in_event_order() {
    let mut p = two_qp_skeleton();
    // Out-of-bounds write: E001. An OOB op gets no tracked remote range,
    // so it cannot also seed a race diagnostic.
    p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 4090));
    // Misaligned (but in-bounds) atomic: E002, and it stays outstanding.
    p.post(
        QpNum(0),
        atomic(VerbKind::FetchAdd { delta: 1 }, Sge::new(MrId(0), 0, 8), RKey(1), 4084),
    );
    // Unordered overlapping plain write on the other QP, same poll
    // window: E005 against the atomic.
    p.post(QpNum(1), WorkRequest::write(2, Sge::new(MrId(0), 64, 8), RKey(1), 4088));
    let diags = analyze(&p, &DeviceCaps::default());
    let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::E001, Code::E002, Code::E005]);
    assert!(has_errors(&diags));
    // Event order is preserved.
    assert!(diags.windows(2).all(|w| w[0].span.event <= w[1].span.event));
}

// ------------------------------------------- per-device caps overrides

/// Lint one program against two NIC geometries (the ROADMAP's
/// per-device `DeviceCaps` override item): a workload that is clean on
/// the default device trips the capability-sensitive lints — and *only*
/// those — on an older NIC with a quarter of the translation cache and
/// 2-SGE work requests. The diagnostic delta is exactly the geometry
/// difference; the geometry-independent rules stay silent on both.
#[test]
fn same_program_linted_against_two_nic_geometries() {
    let new_nic = DeviceCaps::default();
    let old_nic =
        DeviceCaps { mtt_cache_entries: new_nic.mtt_cache_entries / 4, max_sge: 2, ..new_nic };
    assert!(old_nic.mtt_coverage_bytes() < 2 << 20);
    assert!(new_nic.mtt_coverage_bytes() >= 2 << 20);

    let mut p = VerbProgram::new();
    p.mr(0, MrId(0), 1, 4096);
    p.mr(1, MrId(1), 1, 2 << 20); // fits the new MTT, thrashes the old
    p.qp(QpNum(0), 0, 1, 1, 1);
    let pages = (2 << 20) / new_nic.page_bytes;
    for i in 0..32u64 {
        let off = scrambled_page(i, pages) * new_nic.page_bytes;
        p.post(QpNum(0), WorkRequest::read(i, Sge::new(MrId(0), 0, 32), RKey(1), off));
        p.poll(QpNum(0), 1);
    }
    // A 3-SGE gather: fine on the new device, over the old one's limit.
    let sgl: Vec<Sge> = (0..3).map(|i| Sge::new(MrId(0), i * 64, 64)).collect();
    p.post(
        QpNum(0),
        WorkRequest {
            wr_id: WrId(100),
            kind: VerbKind::Write,
            sgl: sgl.into(),
            remote: Some((RKey(1), 0)),
            signaled: true,
        },
    );
    p.poll(QpNum(0), 1);

    let on_new = analyze(&p, &new_nic);
    let on_old = analyze(&p, &old_nic);
    assert!(on_new.is_empty(), "clean on the default geometry: {on_new:?}");
    let old_codes: Vec<Code> = on_old.iter().map(|d| d.code).collect();
    assert_eq!(old_codes, vec![Code::W201, Code::W202]);
    // The W202 message names the old device's actual coverage, so a
    // report over several geometries is self-describing.
    let w202 = on_old.iter().find(|d| d.code == Code::W202).unwrap();
    assert!(
        w202.message.contains(&old_nic.mtt_coverage_bytes().to_string()),
        "message should cite the overridden coverage: {}",
        w202.message
    );
    assert!(!has_errors(&on_old), "geometry pressure is guidance, not an error");
}

#[test]
fn send_posts_are_exempt_from_remote_rules() {
    let mut p = skeleton();
    p.post(
        QpNum(0),
        WorkRequest {
            wr_id: WrId(1),
            kind: VerbKind::Send,
            sgl: Sge::new(MrId(0), 0, 64).into(),
            remote: None,
            signaled: true,
        },
    );
    p.poll(QpNum(0), 1);
    assert!(codes(&p).is_empty());
}
