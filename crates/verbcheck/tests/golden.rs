//! Snapshot test: render one diagnostic of every code and diff the
//! output against the committed golden file. Catches accidental drift
//! in codes, severities, messages, spans, or note lines.
//!
//! To regenerate after an intentional rendering change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p verbcheck --test golden
//! ```

use rnicsim::{DeviceCaps, MrId, QpNum, RKey, Sge, VerbKind, WorkRequest, WrId};
use verbcheck::diag::ALL_CODES;
use verbcheck::{analyze, analyze_with, Code, Diagnostic, LintOptions, VerbProgram};

/// Minimal two-machine skeleton: 4 KB MRs on socket 1, one QP on socket 1.
fn skeleton() -> VerbProgram {
    let mut p = VerbProgram::new();
    p.mr(0, MrId(0), 1, 4096);
    p.mr(1, MrId(1), 1, 4096);
    p.qp(QpNum(0), 0, 1, 1, 1);
    p
}

/// Build, per code, the smallest program that fires exactly that code
/// once, and return the rendered diagnostic.
fn render_one(code: Code) -> String {
    let caps = DeviceCaps::default();
    let diags: Vec<Diagnostic> = match code {
        Code::E001 => {
            let mut p = skeleton();
            p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(9), 0));
            p.poll(QpNum(0), 1);
            analyze(&p, &caps)
        }
        Code::E002 => {
            let mut p = skeleton();
            p.post(
                QpNum(0),
                WorkRequest {
                    wr_id: WrId(7),
                    kind: VerbKind::FetchAdd { delta: 1 },
                    sgl: Sge::new(MrId(0), 0, 8).into(),
                    remote: Some((RKey(1), 12)),
                    signaled: true,
                },
            );
            p.poll(QpNum(0), 1);
            analyze(&p, &caps)
        }
        Code::E003 => {
            let small = DeviceCaps { sq_depth: 4, ..caps };
            let mut p = skeleton();
            for i in 0..4u64 {
                let mut w = WorkRequest::read(i, Sge::new(MrId(0), 0, 8), RKey(1), 0);
                w.signaled = false;
                p.post(QpNum(0), w);
            }
            analyze(&p, &small)
        }
        Code::E004 => {
            let small = DeviceCaps { cq_depth: 4, ..caps };
            let mut p = skeleton();
            for i in 0..5u64 {
                p.post(QpNum(0), WorkRequest::read(i, Sge::new(MrId(0), 0, 8), RKey(1), 0));
            }
            p.poll(QpNum(0), 5);
            analyze(&p, &small)
        }
        Code::E005 => {
            // Two writes overlapping on [48,64) with no poll between the
            // posts: provably unordered.
            let mut p = skeleton();
            p.qp(QpNum(1), 0, 1, 1, 1);
            p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
            p.post(QpNum(1), WorkRequest::write(2, Sge::new(MrId(0), 128, 64), RKey(1), 48));
            p.poll(QpNum(0), 1);
            p.poll(QpNum(1), 1);
            analyze(&p, &caps)
        }
        Code::W102 => {
            // The poll retires only the first of QP 0's writes; QP 1
            // then overlaps the still-outstanding second one.
            let mut p = skeleton();
            p.qp(QpNum(1), 0, 1, 1, 1);
            p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
            p.post(QpNum(0), WorkRequest::write(2, Sge::new(MrId(0), 64, 64), RKey(1), 64));
            p.poll(QpNum(0), 1);
            p.post(QpNum(1), WorkRequest::write(3, Sge::new(MrId(0), 128, 64), RKey(1), 96));
            p.poll(QpNum(0), 1);
            p.poll(QpNum(1), 1);
            analyze(&p, &caps)
        }
        Code::W103 => {
            let mut p = skeleton();
            p.qp(QpNum(1), 0, 1, 1, 1);
            p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
            p.post(QpNum(1), WorkRequest::read(2, Sge::new(MrId(0), 128, 64), RKey(1), 32));
            p.poll(QpNum(0), 1);
            p.poll(QpNum(1), 1);
            analyze(&p, &caps)
        }
        Code::W201 => {
            let small = DeviceCaps { max_sge: 2, ..caps };
            let mut p = skeleton();
            let sgl: Vec<Sge> = (0..3).map(|i| Sge::new(MrId(0), i * 64, 64)).collect();
            p.post(
                QpNum(0),
                WorkRequest {
                    wr_id: WrId(1),
                    kind: VerbKind::Write,
                    sgl: sgl.into(),
                    remote: Some((RKey(1), 0)),
                    signaled: true,
                },
            );
            p.poll(QpNum(0), 1);
            analyze(&p, &small)
        }
        Code::W202 => {
            let mut p = VerbProgram::new();
            p.mr(0, MrId(0), 1, 4096);
            p.mr(1, MrId(1), 1, 64 << 20);
            p.qp(QpNum(0), 0, 1, 1, 1);
            let pages = (64 << 20) / caps.page_bytes;
            for i in 0..16u64 {
                let off = (i.wrapping_mul(2654435761) % pages) * caps.page_bytes;
                p.post(QpNum(0), WorkRequest::read(i, Sge::new(MrId(0), 0, 32), RKey(1), off));
                p.poll(QpNum(0), 1);
            }
            analyze(&p, &caps)
        }
        Code::W203 => {
            let opts = LintOptions { theta: 4, ..LintOptions::default() };
            let mut p = skeleton();
            for i in 0..4u64 {
                p.post(QpNum(0), WorkRequest::write(i, Sge::new(MrId(0), 0, 64), RKey(1), i * 128));
                p.poll(QpNum(0), 1);
            }
            analyze_with(&p, &caps, &opts)
        }
        Code::W204 => {
            let mut p = VerbProgram::new();
            p.mr(0, MrId(0), 0, 4096); // buffer on socket 0, port on socket 1
            p.mr(1, MrId(1), 1, 4096);
            p.qp(QpNum(0), 0, 1, 1, 1);
            p.post(QpNum(0), WorkRequest::write(1, Sge::new(MrId(0), 0, 64), RKey(1), 0));
            p.poll(QpNum(0), 1);
            analyze(&p, &caps)
        }
    };
    assert_eq!(
        diags.len(),
        1,
        "fixture for {} must fire exactly once, got: {diags:#?}",
        code.as_str()
    );
    assert_eq!(diags[0].code, code);
    diags[0].render()
}

#[test]
fn every_code_renders_like_the_golden_file() {
    let mut actual = String::new();
    for code in ALL_CODES {
        actual.push_str(&render_one(*code));
        actual.push('\n');
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_diagnostics.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        print_refresh_summary(&std::fs::read_to_string(path).unwrap_or_default(), &actual);
        std::fs::write(path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, expected,
        "rendered diagnostics drifted from the golden file; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Per-code diff summary printed on `UPDATE_GOLDEN=1`, so a refresh
/// shows what it is about to change instead of silently overwriting.
fn print_refresh_summary(old: &str, new: &str) {
    let by_code = |text: &str| -> std::collections::BTreeMap<String, String> {
        text.split("\n\n")
            .filter(|b| !b.trim().is_empty())
            .filter_map(|b| {
                let code = b.split('[').nth(1)?.split(']').next()?.to_string();
                Some((code, b.to_string()))
            })
            .collect()
    };
    let (old_blocks, new_blocks) = (by_code(old), by_code(new));
    let mut added = 0usize;
    let mut removed = 0usize;
    let mut changed = 0usize;
    for (code, block) in &new_blocks {
        match old_blocks.get(code) {
            None => {
                added += 1;
                eprintln!("golden refresh: + {code} (new code)");
            }
            Some(o) if o != block => {
                changed += 1;
                eprintln!("golden refresh: ~ {code} (rendering changed)");
            }
            Some(_) => {}
        }
    }
    for code in old_blocks.keys() {
        if !new_blocks.contains_key(code) {
            removed += 1;
            eprintln!("golden refresh: - {code} (code removed)");
        }
    }
    eprintln!(
        "golden refresh: {added} added, {removed} removed, {changed} changed, \
         {} unchanged",
        new_blocks.len() - added - changed
    );
}
