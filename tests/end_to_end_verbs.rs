//! Cross-crate integration: the full verb stack against the calibration
//! anchors the paper publishes.

use rdma_memsem::net::{ClusterConfig, Endpoint, Testbed};
use rdma_memsem::nic::{CqeStatus, MrId, RKey, Sge, VerbKind, WorkRequest, WrId};
use rdma_memsem::sim::SimTime;

fn setup() -> (Testbed, MrId, MrId, rdma_memsem::net::ConnId) {
    let mut tb = Testbed::new(ClusterConfig::two_machines());
    let src = tb.register(0, 1, 1 << 20);
    let dst = tb.register(1, 1, 1 << 20);
    let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
    (tb, src, dst, conn)
}

fn warm_latency(kind: VerbKind, payload: u64) -> SimTime {
    let (mut tb, src, dst, conn) = setup();
    let mk = |id| WorkRequest {
        wr_id: WrId(id),
        kind: kind.clone(),
        sgl: Sge::new(src, 0, payload).into(),
        remote: Some((RKey(dst.0 as u64), 0)),
        signaled: true,
    };
    let warm = tb.post_one(SimTime::ZERO, conn, mk(0));
    let c = tb.post_one(warm.at, conn, mk(1));
    c.at - warm.at
}

#[test]
fn small_write_latency_matches_fig1() {
    let lat = warm_latency(VerbKind::Write, 8);
    assert!((lat.as_us() - 1.16).abs() < 0.05, "small write latency {lat} off the 1.16us anchor");
}

#[test]
fn small_read_latency_matches_fig1() {
    let lat = warm_latency(VerbKind::Read, 8);
    assert!((lat.as_us() - 2.00).abs() < 0.08, "small read latency {lat} off the 2.00us anchor");
}

#[test]
fn atomic_latency_sits_between_write_and_rpc() {
    let w = warm_latency(VerbKind::Write, 8);
    let a = warm_latency(VerbKind::FetchAdd { delta: 1 }, 8);
    let (mut tb, _src, _dst, conn) = setup();
    let rpc = tb.rpc_call(SimTime::ZERO, conn, 16, 16, SimTime::from_ns(100));
    assert!(w < a, "atomics pay the atomic unit");
    assert!(a < rpc - SimTime::ZERO, "atomics beat two-sided RPC");
}

#[test]
fn latency_grows_monotonically_with_payload() {
    let mut prev = SimTime::ZERO;
    for shift in 1..=13 {
        let lat = warm_latency(VerbKind::Write, 1 << shift);
        assert!(lat > prev, "latency not monotone at 2^{shift}");
        prev = lat;
    }
    // And steeply past 2 KB (link + PCIe serialization dominate).
    let at2k = warm_latency(VerbKind::Write, 2048);
    let at8k = warm_latency(VerbKind::Write, 8192);
    assert!(at8k.as_ns() > 2.0 * at2k.as_ns());
}

#[test]
fn data_round_trips_through_two_hops() {
    // Write m0 -> m1, then a third machine reads it back out of m1.
    let mut tb = Testbed::new(ClusterConfig { machines: 3, ..Default::default() });
    let a = tb.register(0, 1, 4096);
    let b = tb.register(1, 1, 4096);
    let c = tb.register(2, 1, 4096);
    let ab = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
    let cb = tb.connect(Endpoint::affine(2, 1), Endpoint::affine(1, 1));
    tb.machine_mut(0).mem.write(a, 0, b"relayed through machine one");
    let w = tb.post_one(
        SimTime::ZERO,
        ab,
        WorkRequest::write(1, Sge::new(a, 0, 27), RKey(b.0 as u64), 100),
    );
    let r = tb.post_one(w.at, cb, WorkRequest::read(2, Sge::new(c, 0, 27), RKey(b.0 as u64), 100));
    assert_eq!(r.status, CqeStatus::Success);
    assert_eq!(tb.machine(2).mem.read(c, 0, 27), b"relayed through machine one");
}

#[test]
fn concurrent_faa_from_many_machines_is_exact() {
    use rdma_memsem::net::{run_clients, Client, ClosedLoop};
    let mut tb = Testbed::new(ClusterConfig::default());
    let counter = tb.register(7, 1, 64);
    let mut loops = Vec::new();
    for m in 0..7 {
        let scratch = tb.register(m, 1, 64);
        let conn = tb.connect(Endpoint::affine(m, 1), Endpoint::affine(7, 1));
        let rkey = RKey(counter.0 as u64);
        loops.push(ClosedLoop::new(2, 50, move |tb: &mut Testbed, now, i| {
            let wr = WorkRequest {
                wr_id: WrId(i),
                kind: VerbKind::FetchAdd { delta: 1 },
                sgl: Sge::new(scratch, 0, 8).into(),
                remote: Some((rkey, 0)),
                signaled: true,
            };
            tb.post_one(now, conn, wr).at
        }));
    }
    let mut clients: Vec<Box<dyn Client + '_>> =
        loops.iter_mut().map(|c| Box::new(c) as _).collect();
    run_clients(&mut tb, &mut clients, SimTime::MAX);
    drop(clients);
    assert_eq!(tb.machine(7).mem.load_u64(counter, 0), 7 * 50);
}

#[test]
fn mtt_thrash_degrades_random_write_latency() {
    // §II-B2: with many registered pages, random access loses badly.
    let (mut tb, src, dst, conn) = setup();
    // Warm sequential ops on a small range stay fast.
    let seq = warm_latency(VerbKind::Write, 32);
    // Now a giant region accessed randomly: every op misses the MTT.
    let big = tb.register_unbacked(1, 1, 2 << 30);
    let mut rng = rdma_memsem::sim::SimRng::new(1);
    let mut t = SimTime::ZERO;
    let mut total = SimTime::ZERO;
    let n = 50;
    for i in 0..n {
        let off = rng.gen_range((2 << 30) - 64);
        let wr = WorkRequest::write(i, Sge::new(src, 0, 32), RKey(big.0 as u64), off);
        let c = tb.post_one(t, conn, wr);
        total += c.at - t;
        t = c.at;
    }
    let rand = total / n;
    assert!(
        rand.as_ns() > seq.as_ns() * 1.3,
        "random ({rand}) should exceed sequential ({seq}) clearly"
    );
    let _ = dst;
}
