//! Reproducibility: every experiment is a pure function of its seed.

use rdma_memsem::study::{
    run_dlog, run_hashtable, run_shuffle, DlogConfig, HtConfig, HtVariant, ShuffleConfig,
    ShuffleVariant,
};

#[test]
fn hashtable_runs_are_bit_identical() {
    let cfg = HtConfig {
        front_ends: 4,
        keys: 1 << 14,
        ops_per_fe: 400,
        variant: HtVariant::Reorder { theta: 16 },
        ..Default::default()
    };
    let a = run_hashtable(&cfg);
    let b = run_hashtable(&cfg);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.ops, b.ops);
    assert!((a.mops - b.mops).abs() < 1e-12);
    assert!((a.hot_fraction - b.hot_fraction).abs() < 1e-12);
}

#[test]
fn hashtable_seed_changes_the_run() {
    let base = HtConfig {
        front_ends: 4,
        keys: 1 << 14,
        ops_per_fe: 400,
        variant: HtVariant::Reorder { theta: 16 },
        ..Default::default()
    };
    let a = run_hashtable(&base);
    let b = run_hashtable(&HtConfig { seed: 99, ..base });
    assert_ne!(a.makespan, b.makespan, "different seeds should differ");
}

#[test]
fn shuffle_runs_are_bit_identical() {
    let cfg = ShuffleConfig {
        executors: 6,
        entries_per_executor: 1000,
        variant: ShuffleVariant::Sp(16),
        ..Default::default()
    };
    let a = run_shuffle(&cfg);
    let b = run_shuffle(&cfg);
    assert_eq!(a.makespan, b.makespan);
    assert!(a.verified && b.verified);
}

#[test]
fn dlog_runs_are_bit_identical() {
    let cfg = DlogConfig { engines: 5, batch: 8, records_per_engine: 300, ..Default::default() };
    let a = run_dlog(&cfg);
    let b = run_dlog(&cfg);
    assert_eq!(a.makespan, b.makespan);
    assert!(a.verified && b.verified);
}

#[test]
fn rng_streams_are_interleaving_independent() {
    // Splitting the run RNG per client means client 0's stream is the
    // same whether or not client 1 exists: adding front-ends must not
    // change which keys front-end 0 touches.
    use rdma_memsem::gen::{KvSpec, KvStream};
    use rdma_memsem::sim::SimRng;
    let root = SimRng::new(42);
    let spec = KvSpec { keys: 1 << 12, ..Default::default() };
    let a: Vec<u64> = {
        let mut s = KvStream::new(spec.clone(), root.split(1));
        (0..100).map(|_| s.next_op().key()).collect()
    };
    // "Recreate the world" with more clients; stream 1 is untouched.
    let b: Vec<u64> = {
        let _other = KvStream::new(spec.clone(), root.split(2));
        let mut s = KvStream::new(spec, root.split(1));
        (0..100).map(|_| s.next_op().key()).collect()
    };
    assert_eq!(a, b);
}
