//! Property-based tests (proptest) over the core invariants: simulated
//! memory behaves like memory, the timeline allocator never double-books,
//! atomics conserve, the LRU matches a reference model, and workload
//! encodings round-trip.

use proptest::prelude::*;
use rdma_memsem::net::{ClusterConfig, Endpoint, Testbed};
use rdma_memsem::nic::{CqeStatus, MrId, RKey, Sge, VerbKind, WorkRequest, WrId};
use rdma_memsem::sim::{KServer, LruSet, SimTime};
use std::collections::HashMap;

/// A random program of writes and reads against one remote region must
/// agree with a plain `Vec<u8>` model.
#[derive(Debug, Clone)]
enum Op {
    Write { off: u16, data: Vec<u8> },
    Read { off: u16, len: u8 },
    Faa { off_slot: u8, delta: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..3000, proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(off, data)| Op::Write { off, data }),
        (0u16..3000, 1u8..64).prop_map(|(off, len)| Op::Read { off, len }),
        (0u8..16, any::<u32>()).prop_map(|(off_slot, delta)| Op::Faa { off_slot, delta }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn remote_memory_matches_a_byte_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut tb = Testbed::new(ClusterConfig::two_machines());
        let src = tb.register(0, 1, 8192);
        let dst = tb.register(1, 1, 8192);
        let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
        let rkey = RKey(dst.0 as u64);
        let mut model = vec![0u8; 8192];
        let mut t = SimTime::ZERO;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Write { off, data } => {
                    let off = *off as u64;
                    tb.machine_mut(0).mem.write(src, 0, data);
                    let wr = WorkRequest::write(i as u64, Sge::new(src, 0, data.len() as u64), rkey, off);
                    let c = tb.post_one(t, conn, wr);
                    prop_assert_eq!(c.status, CqeStatus::Success);
                    t = c.at;
                    model[off as usize..off as usize + data.len()].copy_from_slice(data);
                }
                Op::Read { off, len } => {
                    let off = *off as u64;
                    let len = *len as u64;
                    let wr = WorkRequest::read(i as u64, Sge::new(src, 4096, len), rkey, off);
                    let c = tb.post_one(t, conn, wr);
                    prop_assert_eq!(c.status, CqeStatus::Success);
                    t = c.at;
                    let got = tb.machine(0).mem.read(src, 4096, len);
                    prop_assert_eq!(&got[..], &model[off as usize..(off + len) as usize]);
                }
                Op::Faa { off_slot, delta } => {
                    // Aligned 8-byte counters in the 4096.. area of dst.
                    let off = 4096 + *off_slot as u64 * 8;
                    let wr = WorkRequest {
                        wr_id: WrId(i as u64),
                        kind: VerbKind::FetchAdd { delta: *delta as u64 },
                        sgl: vec![Sge::new(src, 0, 8)],
                        remote: Some((rkey, off)),
                        signaled: true,
                    };
                    let c = tb.post_one(t, conn, wr);
                    prop_assert_eq!(c.status, CqeStatus::Success);
                    t = c.at;
                    let old = u64::from_le_bytes(model[off as usize..off as usize + 8].try_into().unwrap());
                    prop_assert_eq!(c.old_value, old);
                    model[off as usize..off as usize + 8]
                        .copy_from_slice(&old.wrapping_add(*delta as u64).to_le_bytes());
                }
            }
        }
        // Final memory image agrees everywhere.
        prop_assert_eq!(tb.machine(1).mem.read(dst, 0, 8192), model);
    }

    /// The gap-filling KServer never overlaps two bookings on one unit
    /// and never serves before the request is ready.
    #[test]
    fn kserver_bookings_never_overlap(
        reqs in proptest::collection::vec((0u64..100_000, 1u64..5_000), 1..120),
        units in 1usize..4,
    ) {
        let mut s = KServer::new(units);
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for &(ready, service) in &reqs {
            let (start, end) = s.acquire(SimTime::from_ps(ready), SimTime::from_ps(service));
            prop_assert!(start.as_ps() >= ready, "served before ready");
            prop_assert_eq!(end.as_ps() - start.as_ps(), service);
            intervals.push((start.as_ps(), end.as_ps()));
        }
        // Across all units, at any instant at most `units` bookings overlap.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for &(s0, e0) in &intervals {
            events.push((s0, 1));
            events.push((e0, -1));
        }
        events.sort();
        let mut depth = 0i64;
        for (_, d) in events {
            depth += d;
            prop_assert!(depth <= units as i64, "more overlap than units");
        }
    }

    /// The LRU set agrees with a brute-force reference model.
    #[test]
    fn lru_matches_reference(keys in proptest::collection::vec(0u64..40, 1..300), cap in 1usize..12) {
        let mut lru = LruSet::new(cap);
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        for &k in &keys {
            let hit = lru.access(k);
            let model_hit = model.contains(&k);
            prop_assert_eq!(hit, model_hit, "divergence on key {}", k);
            model.retain(|&x| x != k);
            model.insert(0, k);
            model.truncate(cap);
        }
    }

    /// Log records survive encode/decode across arbitrary bodies, and a
    /// packed log scans back exactly.
    #[test]
    fn log_records_round_trip(bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..20)) {
        use rdma_memsem::gen::{scan_log, Record};
        let mut log = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            let r = Record { engine: 1, seq: i as u32, body: body.clone() };
            log.extend_from_slice(&r.encode());
        }
        log.extend_from_slice(&[0u8; 64]);
        let back = scan_log(&log);
        prop_assert_eq!(back.len(), bodies.len());
        for (i, r) in back.iter().enumerate() {
            prop_assert_eq!(&r.body, &bodies[i]);
        }
    }

    /// Shuffle entries round-trip and route identically after re-encode.
    #[test]
    fn shuffle_entries_round_trip(key in any::<u64>(), value in proptest::collection::vec(any::<u8>(), 0..128), consumers in 1usize..64) {
        use rdma_memsem::gen::Entry;
        let e = Entry { key, value };
        let decoded = Entry::decode(&e.encode(), e.value.len());
        prop_assert_eq!(&decoded, &e);
        prop_assert_eq!(decoded.destination(consumers), e.destination(consumers));
        prop_assert!(e.destination(consumers) < consumers);
    }

    /// Zipf draws stay in range and rank popularity is monotone in the
    /// aggregate (rank r is drawn at least as often as rank r+8, over a
    /// large sample).
    #[test]
    fn zipf_is_monotone_in_rank(seed in any::<u64>()) {
        use rdma_memsem::gen::Zipf;
        use rdma_memsem::sim::SimRng;
        let z = Zipf::paper(256);
        let mut rng = SimRng::new(seed);
        let mut counts = HashMap::new();
        for _ in 0..20_000 {
            let r = z.rank(&mut rng);
            prop_assert!(r < 256);
            *counts.entry(r).or_insert(0u64) += 1;
        }
        let get = |r: u64| counts.get(&r).copied().unwrap_or(0);
        for r in [0u64, 8, 16, 32, 64] {
            prop_assert!(get(r) + 50 >= get(r + 8), "rank {} vs {}", r, r + 8);
        }
    }
}
