//! Property-style tests over the core invariants: simulated memory behaves
//! like memory, the timeline allocator never double-books, atomics
//! conserve, the LRU matches a reference model, and workload encodings
//! round-trip. Random programs come from the deterministic `SimRng` (fixed
//! seeds; no external property-testing framework).

use rdma_memsem::net::{ClusterConfig, Endpoint, Testbed};
use rdma_memsem::nic::{CqeStatus, RKey, Sge, VerbKind, WorkRequest, WrId};
use rdma_memsem::sim::{KServer, LruSet, SimRng, SimTime};
use std::collections::HashMap;

/// A random program of writes and reads against one remote region must
/// agree with a plain `Vec<u8>` model.
#[derive(Debug, Clone)]
enum Op {
    Write { off: u16, data: Vec<u8> },
    Read { off: u16, len: u8 },
    Faa { off_slot: u8, delta: u32 },
}

fn random_op(rng: &mut SimRng) -> Op {
    match rng.gen_range(3) {
        0 => {
            let off = rng.gen_range(3000) as u16;
            let data: Vec<u8> = (0..1 + rng.gen_range(63)).map(|_| rng.next_u64() as u8).collect();
            Op::Write { off, data }
        }
        1 => Op::Read { off: rng.gen_range(3000) as u16, len: 1 + rng.gen_range(63) as u8 },
        _ => Op::Faa { off_slot: rng.gen_range(16) as u8, delta: rng.next_u64() as u32 },
    }
}

#[test]
fn remote_memory_matches_a_byte_model() {
    let mut rng = SimRng::new(0xE101);
    for _ in 0..24 {
        let ops: Vec<Op> = (0..1 + rng.gen_range(59)).map(|_| random_op(&mut rng)).collect();
        let mut tb = Testbed::new(ClusterConfig::two_machines());
        let src = tb.register(0, 1, 8192);
        let dst = tb.register(1, 1, 8192);
        let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
        let rkey = RKey(dst.0 as u64);
        let mut model = vec![0u8; 8192];
        let mut t = SimTime::ZERO;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Write { off, data } => {
                    let off = *off as u64;
                    tb.machine_mut(0).mem.write(src, 0, data);
                    let wr = WorkRequest::write(
                        i as u64,
                        Sge::new(src, 0, data.len() as u64),
                        rkey,
                        off,
                    );
                    let c = tb.post_one(t, conn, wr);
                    assert_eq!(c.status, CqeStatus::Success);
                    t = c.at;
                    model[off as usize..off as usize + data.len()].copy_from_slice(data);
                }
                Op::Read { off, len } => {
                    let off = *off as u64;
                    let len = *len as u64;
                    let wr = WorkRequest::read(i as u64, Sge::new(src, 4096, len), rkey, off);
                    let c = tb.post_one(t, conn, wr);
                    assert_eq!(c.status, CqeStatus::Success);
                    t = c.at;
                    let got = tb.machine(0).mem.read(src, 4096, len);
                    assert_eq!(&got[..], &model[off as usize..(off + len) as usize]);
                }
                Op::Faa { off_slot, delta } => {
                    // Aligned 8-byte counters in the 4096.. area of dst.
                    let off = 4096 + *off_slot as u64 * 8;
                    let wr = WorkRequest {
                        wr_id: WrId(i as u64),
                        kind: VerbKind::FetchAdd { delta: *delta as u64 },
                        sgl: Sge::new(src, 0, 8).into(),
                        remote: Some((rkey, off)),
                        signaled: true,
                    };
                    let c = tb.post_one(t, conn, wr);
                    assert_eq!(c.status, CqeStatus::Success);
                    t = c.at;
                    let old = u64::from_le_bytes(
                        model[off as usize..off as usize + 8].try_into().unwrap(),
                    );
                    assert_eq!(c.old_value, old);
                    model[off as usize..off as usize + 8]
                        .copy_from_slice(&old.wrapping_add(*delta as u64).to_le_bytes());
                }
            }
        }
        // Final memory image agrees everywhere.
        assert_eq!(tb.machine(1).mem.read(dst, 0, 8192), model);
    }
}

/// The gap-filling KServer never overlaps two bookings on one unit and
/// never serves before the request is ready.
#[test]
fn kserver_bookings_never_overlap() {
    let mut rng = SimRng::new(0xE102);
    for _ in 0..32 {
        let units = 1 + rng.gen_range(3) as usize;
        let reqs: Vec<(u64, u64)> = (0..1 + rng.gen_range(119))
            .map(|_| (rng.gen_range(100_000), 1 + rng.gen_range(4_999)))
            .collect();
        let mut s = KServer::new(units);
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for &(ready, service) in &reqs {
            let (start, end) = s.acquire(SimTime::from_ps(ready), SimTime::from_ps(service));
            assert!(start.as_ps() >= ready, "served before ready");
            assert_eq!(end.as_ps() - start.as_ps(), service);
            intervals.push((start.as_ps(), end.as_ps()));
        }
        // Across all units, at any instant at most `units` bookings overlap.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for &(s0, e0) in &intervals {
            events.push((s0, 1));
            events.push((e0, -1));
        }
        events.sort();
        let mut depth = 0i64;
        for (_, d) in events {
            depth += d;
            assert!(depth <= units as i64, "more overlap than units");
        }
    }
}

/// The LRU set agrees with a brute-force reference model.
#[test]
fn lru_matches_reference() {
    let mut rng = SimRng::new(0xE103);
    for _ in 0..48 {
        let cap = 1 + rng.gen_range(11) as usize;
        let keys: Vec<u64> = (0..1 + rng.gen_range(299)).map(|_| rng.gen_range(40)).collect();
        let mut lru = LruSet::new(cap);
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        for &k in &keys {
            let hit = lru.access(k);
            let model_hit = model.contains(&k);
            assert_eq!(hit, model_hit, "divergence on key {k}");
            model.retain(|&x| x != k);
            model.insert(0, k);
            model.truncate(cap);
        }
    }
}

/// Log records survive encode/decode across arbitrary bodies, and a packed
/// log scans back exactly.
#[test]
fn log_records_round_trip() {
    use rdma_memsem::gen::{scan_log, Record};
    let mut rng = SimRng::new(0xE104);
    for _ in 0..32 {
        let bodies: Vec<Vec<u8>> = (0..1 + rng.gen_range(19))
            .map(|_| (0..rng.gen_range(100)).map(|_| rng.next_u64() as u8).collect())
            .collect();
        let mut log = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            let r = Record { engine: 1, seq: i as u32, body: body.clone() };
            log.extend_from_slice(&r.encode());
        }
        log.extend_from_slice(&[0u8; 64]);
        let back = scan_log(&log);
        assert_eq!(back.len(), bodies.len());
        for (i, r) in back.iter().enumerate() {
            assert_eq!(&r.body, &bodies[i]);
        }
    }
}

/// Shuffle entries round-trip and route identically after re-encode.
#[test]
fn shuffle_entries_round_trip() {
    use rdma_memsem::gen::Entry;
    let mut rng = SimRng::new(0xE105);
    for _ in 0..64 {
        let key = rng.next_u64();
        let value: Vec<u8> = (0..rng.gen_range(128)).map(|_| rng.next_u64() as u8).collect();
        let consumers = 1 + rng.gen_range(63) as usize;
        let e = Entry { key, value };
        let decoded = Entry::decode(&e.encode(), e.value.len());
        assert_eq!(&decoded, &e);
        assert_eq!(decoded.destination(consumers), e.destination(consumers));
        assert!(e.destination(consumers) < consumers);
    }
}

/// Zipf draws stay in range and rank popularity is monotone in the
/// aggregate (rank r is drawn at least as often as rank r+8, over a large
/// sample).
#[test]
fn zipf_is_monotone_in_rank() {
    use rdma_memsem::gen::Zipf;
    let mut meta = SimRng::new(0xE106);
    for _ in 0..8 {
        let z = Zipf::paper(256);
        let mut rng = SimRng::new(meta.next_u64());
        let mut counts = HashMap::new();
        for _ in 0..20_000 {
            let r = z.rank(&mut rng);
            assert!(r < 256);
            *counts.entry(r).or_insert(0u64) += 1;
        }
        let get = |r: u64| counts.get(&r).copied().unwrap_or(0);
        for r in [0u64, 8, 16, 32, 64] {
            assert!(get(r) + 50 >= get(r + 8), "rank {} vs {}", r, r + 8);
        }
    }
}
