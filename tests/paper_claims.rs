//! The paper's headline claims, asserted as shape bands on small-scale
//! runs (full-scale numbers come from `repro all`; these guard against
//! regressions that would flip a conclusion).

use rdma_memsem::host::{local_spinlock_mops, HostMemConfig};
use rdma_memsem::study::{
    run_dlog, run_hashtable, run_join, run_shuffle, single_machine_time, DlogConfig, HtConfig,
    HtVariant, JoinConfig, ShuffleConfig, ShuffleVariant,
};

/// §IV-B: the optimized disaggregated hashtable lands in the paper's
/// 1.85–2.70x band (we allow a slightly wider envelope).
#[test]
fn hashtable_speedup_band() {
    let base = HtConfig { front_ends: 6, keys: 1 << 16, ops_per_fe: 800, ..Default::default() };
    let basic = run_hashtable(&HtConfig { variant: HtVariant::Basic, ..base.clone() });
    let best = run_hashtable(&HtConfig { variant: HtVariant::Reorder { theta: 16 }, ..base });
    let speedup = best.mops / basic.mops;
    assert!(
        (1.7..=3.4).contains(&speedup),
        "hashtable speedup {speedup:.2} outside the paper band (2.7x)"
    );
}

/// §IV-C: batched shuffle beats the naive one by multiples (paper 5.8x).
#[test]
fn shuffle_speedup_band() {
    let base = ShuffleConfig { executors: 16, entries_per_executor: 2000, ..Default::default() };
    let basic = run_shuffle(&ShuffleConfig { variant: ShuffleVariant::Basic, ..base.clone() });
    let sp = run_shuffle(&ShuffleConfig { variant: ShuffleVariant::Sp(16), ..base });
    assert!(basic.verified && sp.verified);
    let speedup = sp.mops / basic.mops;
    assert!(
        (3.0..=8.0).contains(&speedup),
        "shuffle speedup {speedup:.2} outside the paper band (5.8x)"
    );
}

/// §IV-D: the fully optimized join beats the single machine by multiples
/// (paper 5.3x) and the naive distributed version by more (paper 10.3x).
#[test]
fn join_speedup_bands() {
    let tuples = 1 << 16;
    let best = run_join(&JoinConfig {
        executors: 16,
        batch: 16,
        tuples,
        verify: false,
        ..Default::default()
    });
    let naive = run_join(&JoinConfig {
        executors: 4,
        batch: 1,
        tuples,
        numa: false,
        verify: false,
        ..Default::default()
    });
    let single = single_machine_time(tuples);
    let vs_single = single.as_ns() / best.time.as_ns();
    let vs_naive = naive.time.as_ns() / best.time.as_ns();
    assert!((3.0..=14.0).contains(&vs_single), "join vs single {vs_single:.1}");
    assert!((6.0..=22.0).contains(&vs_naive), "join vs naive {vs_naive:.1}");
    assert!(vs_naive > vs_single, "naive distributed must be the worst");
}

/// §IV-E: batch-32 logging multiplies throughput (paper 9.1x).
#[test]
fn dlog_speedup_band() {
    let base = DlogConfig { engines: 7, records_per_engine: 800, ..Default::default() };
    let b1 = run_dlog(&DlogConfig { batch: 1, ..base.clone() });
    let b32 = run_dlog(&DlogConfig { batch: 32, ..base });
    assert!(b1.verified && b32.verified);
    let speedup = b32.mops / b1.mops;
    assert!(
        (5.0..=12.0).contains(&speedup),
        "dlog speedup {speedup:.2} outside the paper band (9.1x)"
    );
}

/// §III-D: NUMA-aware placement helps every application.
#[test]
fn numa_awareness_helps_everywhere() {
    let ht_base = HtConfig { front_ends: 6, keys: 1 << 15, ops_per_fe: 600, ..Default::default() };
    let ht_basic = run_hashtable(&HtConfig { variant: HtVariant::Basic, ..ht_base.clone() });
    let ht_numa = run_hashtable(&HtConfig { variant: HtVariant::Numa, ..ht_base });
    assert!(ht_numa.mops > ht_basic.mops);

    let sh = ShuffleConfig {
        executors: 8,
        entries_per_executor: 1200,
        variant: ShuffleVariant::Sp(16),
        ..Default::default()
    };
    let sh_numa = run_shuffle(&ShuffleConfig { numa: true, ..sh.clone() });
    let sh_obl = run_shuffle(&ShuffleConfig { numa: false, ..sh });
    assert!(sh_numa.mops > sh_obl.mops);

    let dl = DlogConfig { engines: 7, batch: 16, records_per_engine: 600, ..Default::default() };
    let dl_numa = run_dlog(&DlogConfig { numa: true, ..dl.clone() });
    let dl_obl = run_dlog(&DlogConfig { numa: false, ..dl });
    assert!(dl_numa.mops > dl_obl.mops);
}

/// §III-E: exponential backoff rescues the local spinlock under
/// contention, and the atomic-unit-bound designs stay in their lanes.
#[test]
fn backoff_and_atomic_unit_claims() {
    let host = HostMemConfig::default();
    assert!(local_spinlock_mops(&host, 14, true) > 5.0 * local_spinlock_mops(&host, 14, false));

    // The FAA-versioned hashtable ablation caps near the atomic units.
    let faa = run_hashtable(&HtConfig {
        front_ends: 10,
        keys: 1 << 15,
        ops_per_fe: 600,
        variant: HtVariant::VersionedFaa,
        ..Default::default()
    });
    assert!(
        faa.mops < 5.5,
        "FAA-per-insert must cap near 2x the 2.35 MOPS atomic unit, got {:.2}",
        faa.mops
    );
}
