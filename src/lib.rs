//! # rdma-memsem — reproduction of *Thinking More about RDMA Memory Semantics*
//!
//! Facade crate re-exporting the full stack, bottom to top:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | engine | [`sim`] | deterministic discrete-event primitives |
//! | host | [`host`] | memory hierarchy, NUMA, local atomics |
//! | device | [`nic`] | RNIC model: MTT/QPC caches, PCIe, exec units |
//! | cluster | [`net`] | machines, fabric, verbs, client runtime |
//! | guidelines | [`opt`] | vector IO, consolidation, proxy routing, remote locks |
//! | workloads | [`gen`] | Zipf/KV/join/shuffle/log generators |
//! | case studies | [`study`] | hashtable, shuffle, join, distributed log |
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the substitution
//! rationale (simulated RNIC in place of the paper's ConnectX-3 testbed).
//!
//! ## Quickstart
//!
//! ```
//! use rdma_memsem::net::{ClusterConfig, Endpoint, Testbed};
//! use rdma_memsem::nic::{RKey, Sge, WorkRequest};
//! use rdma_memsem::sim::SimTime;
//!
//! let mut tb = Testbed::new(ClusterConfig::two_machines());
//! let src = tb.register(0, 1, 4096);
//! let dst = tb.register(1, 1, 4096);
//! let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
//! tb.machine_mut(0).mem.write(src, 0, b"hello, remote memory");
//! let wr = WorkRequest::write(1, Sge::new(src, 0, 20), RKey(dst.0 as u64), 0);
//! let cqe = tb.post_one(SimTime::ZERO, conn, wr);
//! assert_eq!(tb.machine(1).mem.read(dst, 0, 20), b"hello, remote memory");
//! assert!(cqe.at.as_us() < 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic discrete-event simulation primitives (`simcore`).
pub mod sim {
    pub use simcore::*;
}

/// Host memory hierarchy and NUMA model (`memmodel`).
pub mod host {
    pub use memmodel::*;
}

/// The RNIC device model (`rnicsim`).
pub mod nic {
    pub use rnicsim::*;
}

/// The simulated cluster and verbs API (`cluster`).
pub mod net {
    pub use cluster::*;
}

/// The paper's optimization guidelines as a library (`remem`).
pub mod opt {
    pub use remem::*;
}

/// Workload generators (`workloads`).
pub mod gen {
    pub use workloads::*;
}

/// The four case-study applications (`apps`).
pub mod study {
    pub use apps::*;
}
