//! Distributed shuffle pipeline (§IV-C): pushes a keyed entry stream
//! across the cluster with each vector-IO strategy, verifies that every
//! entry reached the right executor intact, and prints the Fig 15 story.
//!
//! ```text
//! cargo run --release --example shuffle_pipeline
//! ```

use rdma_memsem::study::shuffle::{run_shuffle, ShuffleConfig, ShuffleVariant};

fn main() {
    let executors = 16;
    let base = ShuffleConfig { executors, entries_per_executor: 4000, ..Default::default() };

    println!(
        "distributed shuffle: {executors} executors on 8 machines, {} entries each, 32 B entries\n",
        base.entries_per_executor
    );

    let mut basic_mops = 0.0;
    for variant in [
        ShuffleVariant::Basic,
        ShuffleVariant::Sgl(4),
        ShuffleVariant::Sgl(16),
        ShuffleVariant::Sp(4),
        ShuffleVariant::Sp(16),
    ] {
        let r = run_shuffle(&ShuffleConfig { variant, ..base.clone() });
        assert!(r.verified, "an entry was lost or corrupted");
        if matches!(variant, ShuffleVariant::Basic) {
            basic_mops = r.mops;
        }
        println!(
            "{:<18} {:8.2} M entries/s   ({:4.1}x basic)   makespan {}",
            variant.label(),
            r.mops,
            r.mops / basic_mops,
            r.makespan
        );
    }

    println!("\nall runs verified: every entry delivered to hash(key) % {executors}, bytes intact");
    println!("paper: SGL(16) 4.8x and SP(16) 5.8x over basic at 16 executors");
    println!("SP gathers with the CPU (cheap for 32 B entries); SGL offloads to the RNIC's");
    println!("scatter/gather engine — compare CPU costs in `repro fig18`.");
}
