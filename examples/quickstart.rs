//! Quickstart: bring up a simulated RDMA cluster, register memory, and
//! issue the full one-sided verb family — Write, Read, compare-and-swap,
//! fetch-and-add — printing the paper-calibrated latency of each.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rdma_memsem::net::{ClusterConfig, Endpoint, Testbed};
use rdma_memsem::nic::{RKey, Sge, VerbKind, WorkRequest, WrId};
use rdma_memsem::sim::SimTime;

fn main() {
    // Two machines of the paper's testbed: dual-socket Xeon, dual-port
    // 40 Gbps ConnectX-3. Port 1 sits on socket 1 on both ends.
    let mut tb = Testbed::new(ClusterConfig::two_machines());
    let src = tb.register(0, 1, 1 << 16);
    let dst = tb.register(1, 1, 1 << 16);
    let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));

    println!("simulated testbed up: 2 machines, RC connection established");

    // --- RDMA Write: move real bytes, no remote CPU -------------------
    tb.machine_mut(0).mem.write(src, 0, b"one-sided writes move real bytes");
    let wr = WorkRequest::write(1, Sge::new(src, 0, 32), RKey(dst.0 as u64), 128);
    let warm = tb.post_one(SimTime::ZERO, conn, wr.clone());
    let cqe = tb.post_one(warm.at, conn, WorkRequest { wr_id: WrId(2), ..wr });
    println!(
        "RDMA Write  32B: {:>10}   (paper: ~1.16us small writes)",
        format!("{}", cqe.at - warm.at)
    );
    assert_eq!(tb.machine(1).mem.read(dst, 128, 32), b"one-sided writes move real bytes");

    // --- RDMA Read -----------------------------------------------------
    let rd = WorkRequest::read(3, Sge::new(src, 4096, 32), RKey(dst.0 as u64), 128);
    let t0 = cqe.at;
    let cqe = tb.post_one(t0, conn, rd);
    println!("RDMA Read   32B: {:>10}   (paper: ~2.00us small reads)", format!("{}", cqe.at - t0));
    assert_eq!(tb.machine(0).mem.read(src, 4096, 32), b"one-sided writes move real bytes");

    // --- RDMA fetch-and-add ---------------------------------------------
    let t0 = cqe.at;
    let faa = WorkRequest {
        wr_id: WrId(4),
        kind: VerbKind::FetchAdd { delta: 5 },
        sgl: Sge::new(src, 0, 8).into(),
        remote: Some((RKey(dst.0 as u64), 0)),
        signaled: true,
    };
    let cqe = tb.post_one(t0, conn, faa);
    println!(
        "RDMA FAA     8B: {:>10}   returned old value {} (counter now {})",
        format!("{}", cqe.at - t0),
        cqe.old_value,
        tb.machine(1).mem.load_u64(rdma_memsem::nic::MrId(0), 0),
    );

    // --- RDMA compare-and-swap ------------------------------------------
    let t0 = cqe.at;
    let cas = WorkRequest {
        wr_id: WrId(5),
        kind: VerbKind::CompareSwap { expected: 5, desired: 99 },
        sgl: Sge::new(src, 0, 8).into(),
        remote: Some((RKey(dst.0 as u64), 0)),
        signaled: true,
    };
    let cqe = tb.post_one(t0, conn, cas);
    println!(
        "RDMA CAS     8B: {:>10}   swapped {} -> {}",
        format!("{}", cqe.at - t0),
        cqe.old_value,
        tb.machine(1).mem.load_u64(rdma_memsem::nic::MrId(0), 0),
    );

    // --- Two-sided RPC for contrast --------------------------------------
    let t0 = cqe.at;
    let reply = tb.rpc_call(t0, conn, 32, 32, SimTime::from_ns(100));
    println!(
        "two-sided RPC  : {:>10}   (the remote CPU cost one-sided verbs avoid)",
        format!("{}", reply - t0)
    );
}
