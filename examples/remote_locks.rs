//! Remote synchronization primitives (§III-E): spinlocks over RDMA CAS
//! (with and without exponential backoff), the remote sequencer over FAA,
//! and their two-sided RPC baselines — plus a versioned-entry round trip.
//!
//! ```text
//! cargo run --release --example remote_locks
//! ```

use rdma_memsem::net::{ClusterConfig, Endpoint, Testbed};
use rdma_memsem::nic::{RKey, Sge};
use rdma_memsem::opt::{RemoteSequencer, RemoteSpinlock, RpcLock, RpcSequencer, VersionedEntry};
use rdma_memsem::sim::{SimRng, SimTime};

fn main() {
    let mut tb = Testbed::new(ClusterConfig::two_machines());
    let scratch = tb.register(0, 1, 4096);
    let server = tb.register(1, 1, 4096);
    let conn = tb.connect(Endpoint::affine(0, 1), Endpoint::affine(1, 1));
    let rkey = RKey(server.0 as u64);
    let mut rng = SimRng::new(7);

    // --- remote spinlock -------------------------------------------------
    let lock = RemoteSpinlock::with_backoff(rkey, 0);
    let acq = lock.lock(&mut tb, conn, SimTime::ZERO, Sge::new(scratch, 0, 8), &mut rng);
    println!("remote spinlock acquired in {} ({} CAS)", acq.at, acq.attempts);
    let rel = lock.unlock(&mut tb, conn, acq.at, Sge::new(scratch, 8, 8));
    println!("released (one-sided write of 0) at {rel}");

    // --- remote sequencer --------------------------------------------------
    let seq = RemoteSequencer { rkey, offset: 64 };
    let mut t = rel;
    print!("remote sequencer tickets:");
    for _ in 0..5 {
        let ticket = seq.next(&mut tb, conn, t, Sge::new(scratch, 0, 8));
        print!(" {}", ticket.value);
        t = ticket.at;
    }
    println!(
        "   (~{:.2} MOPS sustained; atomic unit caps at ~2.35)",
        1.0 / ((t - rel).as_us() / 5.0)
    );

    // --- the space-reservation idiom of the distributed log ---------------
    let tk = seq.next_n(&mut tb, conn, t, Sge::new(scratch, 0, 8), 4096);
    println!("reserved 4 KB of log space at offset {} with one FAA", tk.value);
    t = tk.at;

    // --- RPC baselines ------------------------------------------------------
    let rpc_lock = RpcLock::new();
    let a = rpc_lock.lock(&mut tb, conn, t);
    let b = rpc_lock.unlock(&mut tb, conn, a.at);
    println!("RPC lock cycle: {} (the server CPU is on the critical path)", b - t);
    let rpc_seq = RpcSequencer::new();
    let p = rpc_seq.next(&mut tb, conn, b);
    println!("RPC sequencer ticket {} in {}", p.value, p.at - b);

    // --- multi-version entry -----------------------------------------------
    let entry = VersionedEntry { rkey, base: 256, slots: 4, value_len: 16 };
    let w = entry.write(&mut tb, conn, p.at, b"versioned-value!", scratch, 64);
    let r = entry.read(&mut tb, conn, w.at, scratch, 64).expect("a committed version exists");
    println!(
        "versioned entry: wrote v{}, read back v{} = {:?}",
        w.version,
        r.version,
        String::from_utf8_lossy(&r.value)
    );
    assert_eq!(r.value, b"versioned-value!");

    println!("\nrun `repro fig10` for the full contention curves (1-16 threads).");
}
