//! Disaggregated key-value store walkthrough (§IV-B): runs the paper's
//! hashtable at each optimization level and prints the breakdown — the
//! same experiment as Fig 12, at one front-end count, with commentary.
//!
//! ```text
//! cargo run --release --example disaggregated_kv
//! ```

use rdma_memsem::study::hashtable::{run_hashtable, HtConfig, HtVariant};

fn main() {
    let front_ends = 6; // the paper's peak-throughput point
    let base = HtConfig { front_ends, ops_per_fe: 1500, ..Default::default() };

    println!("disaggregated hashtable, {front_ends} front-ends, Zipf-0.99, 100% writes\n");

    let basic = run_hashtable(&HtConfig { variant: HtVariant::Basic, ..base.clone() });
    println!(
        "Basic             {:6.2} MOPS   (oblivious placement: MMIO, CQE and DMA cross QPI)",
        basic.mops
    );

    let numa = run_hashtable(&HtConfig { variant: HtVariant::Numa, ..base.clone() });
    println!(
        "+NUMA             {:6.2} MOPS   (+{:.0}%: socket-affine cores/ports/memory, proxy hand-off)",
        numa.mops,
        100.0 * (numa.mops / basic.mops - 1.0)
    );

    for theta in [4, 16] {
        let r = run_hashtable(&HtConfig { variant: HtVariant::Reorder { theta }, ..base.clone() });
        println!(
            "+Reorder(θ={theta:<2})    {:6.2} MOPS   ({:.2}x basic, {:.0}% of ops absorbed by the hot area)",
            r.mops,
            r.mops / basic.mops,
            100.0 * r.hot_fraction
        );
    }

    // Ablations: what the paper's guidelines warn against.
    let locked = run_hashtable(&HtConfig {
        variant: HtVariant::ReorderLocked { theta: 16 },
        ..base.clone()
    });
    println!("\nablation: flushing under remote spinlocks  {:6.2} MOPS", locked.mops);
    println!(
        "  (three extra backend messages per flush; single-writer burst buffers don't need them)"
    );

    let faa = run_hashtable(&HtConfig { variant: HtVariant::VersionedFaa, ..base });
    println!("ablation: FAA-versioned inserts            {:6.2} MOPS", faa.mops);
    println!("  (every insert crosses the NIC's ~2.35 MOPS atomic unit — §III-E's warning)");
}
